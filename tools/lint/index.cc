#include "index.h"

#include <algorithm>
#include <cstddef>
#include <set>

namespace pafeat_lint {
namespace {

// Statement keywords that look like calls (`if (...)`) and must not become
// call edges.
bool IsStmtKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",    "while",   "switch",        "return",
      "sizeof", "catch",  "alignof", "static_assert", "decltype",
      "else",   "do",     "case",    "throw",         "noexcept",
      "new",    "delete", "defined", "alignas",       "requires"};
  return kKeywords.count(s) > 0;
}

bool IsMallocFamily(const std::string& s) {
  return s == "malloc" || s == "calloc" || s == "realloc" ||
         s == "aligned_alloc";
}

bool IsMakeSmart(const std::string& s) {
  return s == "make_unique" || s == "make_shared";
}

// Container member calls that (re)allocate. `clear`/`pop_back` shrink and
// `erase` never grows, so they are deliberately absent.
bool IsGrowthCall(const std::string& s) {
  static const std::set<std::string> kGrowth = {
      "push_back", "emplace_back",  "emplace", "resize",  "reserve",
      "insert",    "emplace_front", "assign",  "append",  "push_front"};
  return kGrowth.count(s) > 0;
}

bool EndsWithUnderscore(const std::string& s) {
  return !s.empty() && s.back() == '_';
}

struct ClassRange {
  std::string name;
  int first_line = 0;
  int last_line = 0;
};

class FileIndexer {
 public:
  FileIndexer(const std::string& display_path, const std::string& norm_path,
              const LexResult& lexed, Program* program)
      : display_(display_path),
        norm_(norm_path),
        toks_(lexed.tokens),
        annotations_(lexed.annotations),
        annotation_used_(lexed.annotations.size(), false),
        program_(program) {}

  void Run() {
    ParseDeclSeq(0, toks_.size(), /*class_name=*/"");
    AttachRootRngMembers();
  }

 private:
  const Token& Tok(std::size_t i) const { return toks_[i]; }
  const std::string& Text(std::size_t i) const { return toks_[i].text; }
  bool Is(std::size_t i, const char* s) const {
    return i < toks_.size() && toks_[i].text == s;
  }
  bool IsIdent(std::size_t i) const {
    return i < toks_.size() && toks_[i].kind == TokKind::kIdentifier;
  }

  // Index one past the token matching `open` at `i` (i points at `open`).
  // Returns `end` when unbalanced — every caller treats that as "skip the
  // rest", which keeps malformed input from looping.
  std::size_t SkipBalanced(std::size_t i, std::size_t end, const char* open,
                           const char* close) const {
    int depth = 0;
    for (; i < end; ++i) {
      if (Text(i) == open) ++depth;
      if (Text(i) == close && --depth == 0) return i + 1;
    }
    return end;
  }

  // --- declaration scope ----------------------------------------------------

  void ParseDeclSeq(std::size_t begin, std::size_t end,
                    const std::string& class_name) {
    std::size_t i = begin;
    while (i < end) {
      if (Tok(i).kind == TokKind::kPpDirective) {
        ++i;
        continue;
      }
      const std::string& s = Text(i);
      if (s == "namespace") {
        std::size_t j = i + 1;
        while (j < end && (IsIdent(j) || Is(j, "::"))) ++j;
        if (Is(j, "{")) {
          const std::size_t close = SkipBalanced(j, end, "{", "}");
          ParseDeclSeq(j + 1, close - 1, class_name);
          i = close;
          continue;
        }
        ++i;
        continue;
      }
      if (s == "class" || s == "struct" || s == "union") {
        i = ParseClass(i, end);
        continue;
      }
      if (s == "enum") {
        while (i < end && Text(i) != ";" && Text(i) != "{") ++i;
        if (Is(i, "{")) i = SkipBalanced(i, end, "{", "}");
        while (i < end && Text(i) != ";") ++i;
        ++i;
        continue;
      }
      if (s == "using" || s == "typedef" || s == "friend") {
        while (i < end && Text(i) != ";") ++i;
        ++i;
        continue;
      }
      if (s == "template") {
        i = SkipAngles(i + 1, end);
        continue;
      }
      if (s == "{") {
        // Stray block (e.g. a mis-parsed construct): recurse so nothing
        // inside is attributed to declaration scope by accident.
        const std::size_t close = SkipBalanced(i, end, "{", "}");
        ParseDeclSeq(i + 1, close - 1, class_name);
        i = close;
        continue;
      }
      if (s == "(") {
        i = MaybeFunctionDef(i, end, class_name);
        continue;
      }
      ++i;
    }
  }

  std::size_t SkipAngles(std::size_t i, std::size_t end) const {
    if (!Is(i, "<")) return i;
    int depth = 0;
    for (; i < end; ++i) {
      if (Text(i) == "<") ++depth;
      if (Text(i) == ">" && --depth == 0) return i + 1;
      if (Text(i) == ";" || Text(i) == "{") return i;  // malformed
    }
    return i;
  }

  std::size_t ParseClass(std::size_t i, std::size_t end) {
    // The class name is the last identifier before the base clause / body /
    // semicolon (skips attribute-ish macro identifiers).
    std::size_t j = i + 1;
    std::string name;
    int first_line = Tok(i).line;
    while (j < end) {
      const std::string& s = Text(j);
      if (s == ";") return j + 1;  // forward declaration
      if (s == ":" || s == "{") break;
      if (s == "<") {
        j = SkipAngles(j, end);
        continue;
      }
      if (IsIdent(j)) name = s;
      ++j;
    }
    while (j < end && Text(j) != "{") ++j;  // skip base clause
    if (j >= end) return end;
    const std::size_t close = SkipBalanced(j, end, "{", "}");
    ClassRange range;
    range.name = name;
    range.first_line = first_line;
    range.last_line = close - 1 < toks_.size() ? Tok(close - 1).line
                                               : first_line;
    classes_.push_back(range);
    ParseDeclSeq(j + 1, close - 1, name);
    // A class body can be followed by declarators (`} g_instance;`) — the
    // decl-seq loop copes, nothing special needed.
    return close;
  }

  // Gathers `A::B::Name` walking left from the '(' at `paren`. Returns
  // false when no plausible function name precedes it.
  bool GatherName(std::size_t paren, std::string* name,
                  std::string* qualifier, int* name_line) const {
    if (paren == 0) return false;
    std::size_t j = paren - 1;
    // operator foo: `operator=` / `operator()` / `operator[]` — name the
    // def "operator" so its body still gets parsed and attributed.
    if (Tok(j).kind == TokKind::kPunct) {
      std::size_t k = j;
      while (k > 0 && Tok(k).kind == TokKind::kPunct && !Is(k, ")") &&
             !Is(k, ";") && !Is(k, "}")) {
        --k;
      }
      if (IsIdent(k) && Text(k) == "operator") {
        *name = "operator";
        *qualifier = "";
        *name_line = Tok(k).line;
        return true;
      }
      return false;
    }
    if (!IsIdent(j)) return false;
    std::vector<std::string> comps;
    comps.push_back(Text(j));
    *name_line = Tok(j).line;
    while (j >= 2 && Is(j - 1, "::") && IsIdent(j - 2)) {
      comps.push_back(Text(j - 2));
      j -= 2;
    }
    *name = comps.front();
    *qualifier = comps.size() > 1 ? comps[1] : "";
    return true;
  }

  // Decides whether the tokens after the parameter list make this a
  // definition; on success returns the index of the body '{'.
  bool ParseSuffix(std::size_t k, std::size_t end,
                   std::size_t* body_open) const {
    int angle = 0;
    while (k < end) {
      const std::string& s = Text(k);
      if (angle > 0) {
        if (s == "<") ++angle;
        if (s == ">") --angle;
        if (s == ";" || s == "{") return false;  // gave up on the angles
        ++k;
        continue;
      }
      if (s == "{") {
        *body_open = k;
        return true;
      }
      if (s == ";" || s == "=" || s == "," || s == ")" || s == "}") {
        return false;
      }
      if (s == ":") return ParseInitList(k + 1, end, body_open);
      if (s == "(") {
        k = SkipBalanced(k, end, "(", ")");
        continue;
      }
      if (s == "<") ++angle;
      ++k;  // const / noexcept / override / final / & / && / -> / type
    }
    return false;
  }

  // Constructor member-init list: `name(args)` / `name{args}` entries
  // separated by commas, then the body '{'.
  bool ParseInitList(std::size_t k, std::size_t end,
                     std::size_t* body_open) const {
    while (k < end) {
      while (k < end && (IsIdent(k) || Is(k, "::"))) ++k;
      if (Is(k, "<")) {
        k = SkipAngles(k, end);
        while (k < end && (IsIdent(k) || Is(k, "::"))) ++k;
      }
      if (Is(k, "(")) {
        k = SkipBalanced(k, end, "(", ")");
      } else if (Is(k, "{")) {
        k = SkipBalanced(k, end, "{", "}");
      } else {
        return false;
      }
      if (Is(k, ",")) {
        ++k;
        continue;
      }
      if (Is(k, "{")) {
        *body_open = k;
        return true;
      }
      return false;
    }
    return false;
  }

  std::size_t MaybeFunctionDef(std::size_t paren, std::size_t end,
                               const std::string& class_name) {
    std::string name, qualifier;
    int name_line = 0;
    const std::size_t params_end = SkipBalanced(paren, end, "(", ")");
    if (!GatherName(paren, &name, &qualifier, &name_line) ||
        IsStmtKeyword(name)) {
      return params_end;
    }
    std::size_t body_open = 0;
    if (!ParseSuffix(params_end, end, &body_open)) return params_end;
    const std::size_t body_close = SkipBalanced(body_open, end, "{", "}");

    const std::string cls = !qualifier.empty() ? qualifier : class_name;
    const int def_index = static_cast<int>(program_->defs.size());
    FunctionDef def;
    def.name = name;
    def.class_name = cls;
    def.display = cls.empty() ? name : cls + "::" + name;
    def.file = display_;
    def.line = name_line;
    AttachAnnotations(&def);
    program_->defs.push_back(std::move(def));
    ParseBody(def_index, body_open + 1, body_close - 1, cls,
              /*inherited_guard=*/false);
    return body_close;
  }

  void AttachAnnotations(FunctionDef* def) {
    for (std::size_t a = 0; a < annotations_.size(); ++a) {
      if (annotation_used_[a]) continue;
      const Annotation& ann = annotations_[a];
      const bool same_line = !ann.standalone && ann.line == def->line;
      // A standalone annotation attaches to the next definition starting
      // within 3 lines (room for a `template <...>` header line).
      const bool above = ann.standalone && def->line > ann.line &&
                         def->line - ann.line <= 3;
      if (same_line || above) {
        def->annotations.push_back(ann.text);
        annotation_used_[a] = true;
      }
    }
  }

  // --- function bodies ------------------------------------------------------

  void ParseBody(int def_index, std::size_t begin, std::size_t end,
                 const std::string& class_name, bool inherited_guard) {
    int depth = 0;  // braces inside the body
    int paren = 0;
    std::vector<int> parallel_ctx;  // paren levels of open ParallelFor/Submit
    bool guard_active = false;
    int guard_depth = 0;
    std::string guard_var;

    std::size_t i = begin;
    while (i < end) {
      const Token& t = Tok(i);
      const std::string& s = t.text;
      if (s == "{") ++depth;
      if (s == "}") {
        --depth;
        if (guard_active && depth < guard_depth) guard_active = false;
      }
      if (s == "(") ++paren;
      if (s == ")") {
        --paren;
        while (!parallel_ctx.empty() && paren <= parallel_ctx.back()) {
          parallel_ctx.pop_back();
        }
      }
      if (s == "[" && LambdaStart(i, begin)) {
        const std::size_t after = ParseLambda(
            def_index, i, end, class_name, !parallel_ctx.empty(),
            guard_active || inherited_guard);
        if (after > i) {
          i = after;
          continue;
        }
      }
      if (t.kind == TokKind::kIdentifier) {
        const bool prev_member =
            i > begin && (Is(i - 1, ".") || Is(i - 1, "->"));
        const bool next_call = Is(i + 1, "(");

        if (s == "ReadGuard" && !next_call) {
          // `ReplayBuffer::ReadGuard g(...)` or
          // `std::vector<ReplayBuffer::ReadGuard> guards;` — the borrow
          // window opens here and closes with the enclosing block or an
          // explicit `guards.clear()`.
          std::size_t j = i + 1;
          while (j < end && (Is(j, ">") || Is(j, "&") || Is(j, "*"))) ++j;
          if (IsIdent(j)) {
            guard_active = true;
            guard_depth = depth;
            guard_var = Text(j);
          }
        }
        if (guard_active && s == "clear" && next_call && prev_member &&
            i >= 2 && Text(i - 2) == guard_var) {
          guard_active = false;
        }

        if (next_call && !IsStmtKeyword(s) && s != "ReadGuard") {
          CallSite call;
          call.caller = def_index;
          call.callee = s;
          call.member = prev_member;
          if (!prev_member && i > begin && Is(i - 1, "::") && i >= 2 &&
              IsIdent(i - 2)) {
            call.qualifier = Text(i - 2);
          }
          call.line = t.line;
          call.in_guard_region = guard_active || inherited_guard;
          program_->calls.push_back(call);

          if (s == "ParallelFor" || s == "Submit") {
            parallel_ctx.push_back(paren);
          }
          if (!prev_member && IsMallocFamily(s)) {
            AddAlloc(def_index, t.line, s + "()");
          }
          if (prev_member && IsGrowthCall(s)) {
            AddAlloc(def_index, t.line, "." + s + "()");
          }
        }
        if (IsMakeSmart(s) && (Is(i + 1, "<") || next_call)) {
          AddAlloc(def_index, t.line, s + "<>()");
        }
        if (s == "new" && !prev_member) {
          AddAlloc(def_index, t.line, "new");
        }
        if (EndsWithUnderscore(s) && !prev_member && !Is(i + 1, "::")) {
          // Candidate member use; FinalizeProgram keeps only the ones that
          // name a root-annotated Rng member of this def's class.
          program_->defs[def_index].rng_touches.push_back(
              RngTouch{t.line, s});
        }
      }
      ++i;
    }
  }

  bool LambdaStart(std::size_t i, std::size_t begin) const {
    if (i == begin) return true;
    const Token& p = Tok(i - 1);
    if (p.kind == TokKind::kIdentifier) return p.text == "return";
    return p.text == "(" || p.text == "," || p.text == "=" ||
           p.text == "{" || p.text == ";";
  }

  // Returns the index one past the lambda body, or `at` when this turned
  // out not to be a lambda after all.
  std::size_t ParseLambda(int enclosing, std::size_t at, std::size_t end,
                          const std::string& class_name, bool parallel,
                          bool in_guard) {
    std::size_t j = SkipBalanced(at, end, "[", "]");
    if (Is(j, "(")) j = SkipBalanced(j, end, "(", ")");
    // Specifiers until the body: mutable / noexcept(...) / -> type.
    int budget = 16;  // a lambda header is short; bail on anything else
    while (j < end && !Is(j, "{") && budget-- > 0) {
      if (Is(j, "(")) {
        j = SkipBalanced(j, end, "(", ")");
        continue;
      }
      if (Is(j, ";") || Is(j, ")") || Is(j, ",") || Is(j, "]")) return at;
      if (Is(j, "<")) {
        j = SkipAngles(j, end);
        continue;
      }
      ++j;
    }
    if (!Is(j, "{")) return at;
    const std::size_t body_close = SkipBalanced(j, end, "{", "}");

    const int def_index = static_cast<int>(program_->defs.size());
    FunctionDef def;
    def.name = "lambda#" + display_ + ":" +
               std::to_string(Tok(at).line) + "#" +
               std::to_string(def_index);
    def.class_name = class_name;
    def.display = program_->defs[enclosing].display + " lambda (" +
                  display_ + ":" + std::to_string(Tok(at).line) + ")";
    def.file = display_;
    def.line = Tok(at).line;
    def.is_lambda = true;
    def.parallel_body = parallel;
    program_->defs.push_back(std::move(def));

    // "Defined implies may run": the enclosing function gets an edge to the
    // lambda so stored callables (reward shapers, retirement predicates)
    // stay reachable without tracking dataflow.
    CallSite call;
    call.caller = enclosing;
    call.callee = program_->defs[def_index].name;
    call.line = Tok(at).line;
    call.in_guard_region = in_guard;
    program_->calls.push_back(call);

    ParseBody(def_index, j + 1, body_close - 1, class_name, in_guard);
    return body_close;
  }

  void AddAlloc(int def_index, int line, std::string what) {
    program_->defs[def_index].allocs.push_back(
        AllocSite{line, std::move(what)});
  }

  // --- root-rng member annotations -----------------------------------------

  void AttachRootRngMembers() {
    for (std::size_t a = 0; a < annotations_.size(); ++a) {
      const Annotation& ann = annotations_[a];
      if (ann.text != "root-rng") continue;
      const int target_line = ann.standalone ? ann.line + 1 : ann.line;
      // Innermost class whose body spans the annotated member declaration.
      const ClassRange* best = nullptr;
      for (const ClassRange& range : classes_) {
        if (range.first_line <= target_line &&
            target_line <= range.last_line) {
          if (best == nullptr ||
              range.first_line >= best->first_line) {
            best = &range;
          }
        }
      }
      if (best == nullptr || best->name.empty()) continue;
      // Member name: the last identifier on the declaration line.
      std::string member;
      for (const Token& t : toks_) {
        if (t.line != target_line) continue;
        if (t.kind == TokKind::kIdentifier) member = t.text;
      }
      if (member.empty()) continue;
      program_->root_rng_classes[best->name] = member;
      annotation_used_[a] = true;
    }
  }

  const std::string display_;
  const std::string norm_;
  const std::vector<Token>& toks_;
  const std::vector<Annotation>& annotations_;
  std::vector<bool> annotation_used_;
  std::vector<ClassRange> classes_;
  Program* program_;
};

}  // namespace

std::vector<int> Program::Resolve(const CallSite& call) const {
  std::vector<int> out;
  if (call.qualifier == "std") return out;  // std::move etc. never resolve
  auto range = defs_by_name.equal_range(call.callee);
  for (auto it = range.first; it != range.second; ++it) {
    out.push_back(it->second);
  }
  if (!call.qualifier.empty() && !out.empty()) {
    std::vector<int> filtered;
    for (int idx : out) {
      if (defs[idx].class_name == call.qualifier) filtered.push_back(idx);
    }
    if (!filtered.empty()) return filtered;
  }
  return out;
}

void IndexFile(const std::string& display_path, const std::string& norm_path,
               const LexResult& lexed, Program* program) {
  FilePragmas& fp = program->file_pragmas[display_path];
  fp.pragmas = lexed.pragmas;
  fp.annotations = lexed.annotations;
  FileIndexer(display_path, norm_path, lexed, program).Run();
}

void FinalizeProgram(Program* program) {
  program->defs_by_name.clear();
  for (std::size_t i = 0; i < program->defs.size(); ++i) {
    program->defs_by_name.emplace(program->defs[i].name,
                                  static_cast<int>(i));
  }
  // Keep only member-candidate touches that name the root-annotated Rng
  // member of the def's own class.
  for (FunctionDef& def : program->defs) {
    std::vector<RngTouch> kept;
    auto it = program->root_rng_classes.find(def.class_name);
    if (it != program->root_rng_classes.end()) {
      for (const RngTouch& touch : def.rng_touches) {
        if (touch.member == it->second) kept.push_back(touch);
      }
    }
    def.rng_touches = std::move(kept);
  }
}

}  // namespace pafeat_lint
