#include "sarif.h"

#include <cstdio>
#include <set>
#include <sstream>

namespace pafeat_lint {
namespace {

// JSON string escaping for the subset of content findings carry (paths,
// messages, rule ids) — control chars, quotes, backslashes.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string ToSarif(const std::string& tool_name,
                    const std::vector<Finding>& findings) {
  // Rule metadata: one reportingDescriptor per distinct rule id seen.
  std::set<std::string> rule_ids;
  for (const Finding& f : findings) rule_ids.insert(f.rule);

  std::ostringstream out;
  out << "{\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"" << JsonEscape(tool_name) << "\",\n"
      << "          \"informationUri\": "
         "\"https://example.invalid/pafeat/tools/lint\",\n"
      << "          \"rules\": [";
  bool first = true;
  for (const std::string& id : rule_ids) {
    out << (first ? "\n" : ",\n")
        << "            {\"id\": \"" << JsonEscape(id) << "\"}";
    first = false;
  }
  out << (rule_ids.empty() ? "]\n" : "\n          ]\n")
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  first = true;
  for (const Finding& f : findings) {
    std::string text = f.message;
    if (!f.hint.empty()) text += " | hint: " + f.hint;
    out << (first ? "\n" : ",\n")
        << "        {\n"
        << "          \"ruleId\": \"" << JsonEscape(f.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << JsonEscape(text)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": \""
        << JsonEscape(f.file) << "\"},\n"
        << "                \"region\": {\"startLine\": " << f.line << "}\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }";
    first = false;
  }
  out << (findings.empty() ? "]\n" : "\n      ]\n")
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace pafeat_lint
