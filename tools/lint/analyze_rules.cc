#include "analyze_rules.h"

#include <algorithm>
#include <deque>
#include <set>
#include <string>

namespace pafeat_lint {
namespace {

constexpr char kRngEscape[] = "rng-escape";
constexpr char kBorrow[] = "borrow-across-mutation";
constexpr char kHotPathAlloc[] = "hot-path-alloc";
constexpr char kPoolReentrancy[] = "pool-reentrancy";

constexpr char kHotPathRootAnnotation[] = "hot-path-root";

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

// TUs allowed to allocate on the hot path: the tensor layer owns Matrix
// storage and the arena TU owns the slab it hands out.
bool AllocExemptFile(const std::string& file) {
  return Contains(file, "src/tensor/") || Contains(file, "src/nn/workspace.");
}

// The pool implementation itself dispatches work however it likes.
bool PoolExemptFile(const std::string& file) {
  return Contains(file, "src/common/thread_pool");
}

// Call edges materialized once: def -> outgoing call indices, and call ->
// resolved target defs.
struct Graph {
  std::vector<std::vector<std::size_t>> calls_from;
  std::vector<std::vector<int>> targets;
};

Graph BuildGraph(const Program& p) {
  Graph g;
  g.calls_from.resize(p.defs.size());
  g.targets.resize(p.calls.size());
  for (std::size_t c = 0; c < p.calls.size(); ++c) {
    g.calls_from[p.calls[c].caller].push_back(c);
    g.targets[c] = p.Resolve(p.calls[c]);
  }
  return g;
}

// Forward reachability with parent pointers, so findings can print the call
// chain that makes them reachable.
struct Reach {
  std::vector<char> visited;
  std::vector<int> parent_def;  // -1 for roots
  std::vector<int> root_of;     // the root each def was first reached from
};

Reach Bfs(const Program& p, const Graph& g, const std::vector<int>& roots) {
  Reach r;
  r.visited.assign(p.defs.size(), 0);
  r.parent_def.assign(p.defs.size(), -1);
  r.root_of.assign(p.defs.size(), -1);
  std::deque<int> queue;
  for (int root : roots) {
    if (r.visited[root]) continue;
    r.visited[root] = 1;
    r.root_of[root] = root;
    queue.push_back(root);
  }
  while (!queue.empty()) {
    const int def = queue.front();
    queue.pop_front();
    for (std::size_t c : g.calls_from[def]) {
      for (int target : g.targets[c]) {
        if (r.visited[target]) continue;
        r.visited[target] = 1;
        r.parent_def[target] = def;
        r.root_of[target] = r.root_of[def];
        queue.push_back(target);
      }
    }
  }
  return r;
}

// "Root::A -> B::C -> D" (middle elided past 5 hops).
std::string PathTo(const Program& p, const Reach& r, int def) {
  std::vector<int> chain;
  for (int d = def; d != -1; d = r.parent_def[d]) chain.push_back(d);
  std::reverse(chain.begin(), chain.end());
  std::string out;
  const std::size_t n = chain.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (n > 6 && i == 3) {
      out += "... -> ";
      i = n - 3;
    }
    out += p.defs[chain[i]].display;
    if (i + 1 < n) out += " -> ";
  }
  return out;
}

void Report(const Program& p, std::vector<Finding>* findings,
            const std::string& file, int line, const char* rule,
            std::string message, std::string hint) {
  (void)p;
  findings->push_back(
      Finding{file, line, rule, std::move(message), std::move(hint)});
}

// --- rng-escape ------------------------------------------------------------

void CheckRngEscape(const Program& p, const Graph& g,
                    std::vector<Finding>* findings) {
  std::vector<int> roots;
  for (std::size_t i = 0; i < p.defs.size(); ++i) {
    if (p.defs[i].parallel_body) roots.push_back(static_cast<int>(i));
  }
  const Reach r = Bfs(p, g, roots);
  for (std::size_t i = 0; i < p.defs.size(); ++i) {
    if (!r.visited[i]) continue;
    const FunctionDef& def = p.defs[i];
    for (const RngTouch& touch : def.rng_touches) {
      Report(p, findings, def.file, touch.line, kRngEscape,
             "root Rng member '" + touch.member + "' of " + def.class_name +
                 " is touched in code reachable from a parallel body (" +
                 PathTo(p, r, static_cast<int>(i)) + ")",
             "the shared root stream is not safe to advance concurrently and "
             "breaks bit-identical replay at other thread counts; Fork() a "
             "per-task stream before the ParallelFor/Submit and pass it in "
             "by value");
    }
  }
}

// --- borrow-across-mutation ------------------------------------------------

// Replay mutation entry points: calls that may compact, evict or retire
// stored trajectories and therefore invalidate spans borrowed through a
// ReadGuard. AddTrajectory has been one since the buffer existed; the budget
// refactor added EvictToBudget (DESIGN.md "Bounded memory plane"), which
// removes trajectories outside any insertion.
bool IsReplayMutation(const std::string& callee) {
  return callee == "AddTrajectory" || callee == "EvictToBudget";
}

void CheckBorrowAcrossMutation(const Program& p, const Graph& g,
                               std::vector<Finding>* findings) {
  // R = defs whose body reaches a replay mutation call. Reverse fixpoint
  // with a witness call per def so the finding can spell out the path.
  const std::size_t n = p.defs.size();
  std::vector<char> reaches(n, 0);
  std::vector<std::size_t> witness(n, 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t c = 0; c < p.calls.size(); ++c) {
      const CallSite& call = p.calls[c];
      if (reaches[call.caller]) continue;
      bool hit = IsReplayMutation(call.callee);
      if (!hit) {
        for (int target : g.targets[c]) {
          if (reaches[target]) {
            hit = true;
            break;
          }
        }
      }
      if (hit) {
        reaches[call.caller] = 1;
        witness[call.caller] = c;
        changed = true;
      }
    }
  }

  for (std::size_t c = 0; c < p.calls.size(); ++c) {
    const CallSite& call = p.calls[c];
    if (!call.in_guard_region) continue;
    bool hit = IsReplayMutation(call.callee);
    if (!hit) {
      for (int target : g.targets[c]) {
        if (reaches[target]) {
          hit = true;
          break;
        }
      }
    }
    if (!hit) continue;
    // Witness chain from this call toward the mutation entry point.
    std::string path = p.defs[call.caller].display + " -> " + call.callee;
    std::size_t w = c;
    int hops = 0;
    while (!IsReplayMutation(p.calls[w].callee) && hops++ < 6) {
      int next = -1;
      for (int target : g.targets[w]) {
        if (reaches[target]) {
          next = target;
          break;
        }
      }
      if (next == -1) break;
      w = witness[next];
      path += " -> " + p.calls[w].callee;
    }
    Report(p, findings, p.defs[call.caller].file, call.line, kBorrow,
           "call inside a ReplayBuffer::ReadGuard borrow window reaches a "
           "replay mutation (" + path + ")",
           "AddTrajectory/EvictToBudget may compact, evict or retire "
           "trajectories and invalidate borrowed spans; end the borrow "
           "(guard scope exit or .clear()) before mutating the buffer — "
           "this is the static form of the PF_DCHECK in those entry points");
  }
}

// --- hot-path-alloc --------------------------------------------------------

void CheckHotPathAlloc(const Program& p, const Graph& g,
                       std::vector<Finding>* findings) {
  std::vector<int> roots;
  for (std::size_t i = 0; i < p.defs.size(); ++i) {
    for (const std::string& ann : p.defs[i].annotations) {
      if (ann == kHotPathRootAnnotation) roots.push_back(static_cast<int>(i));
    }
  }
  const Reach r = Bfs(p, g, roots);
  for (std::size_t i = 0; i < p.defs.size(); ++i) {
    if (!r.visited[i]) continue;
    const FunctionDef& def = p.defs[i];
    if (AllocExemptFile(def.file)) continue;
    for (const AllocSite& alloc : def.allocs) {
      Report(p, findings, def.file, alloc.line, kHotPathAlloc,
             "allocation (" + alloc.what + ") reachable from steady-state "
             "root " + p.defs[r.root_of[i]].display + " (" +
                 PathTo(p, r, static_cast<int>(i)) + ")",
             "steady-state stepping/serving must stay heap-quiet: write into "
             "caller-provided spans or InferenceArena scratch "
             "(src/nn/workspace.h); one-time setup belongs before the "
             "annotated root, or carries "
             "// lint: allow(hot-path-alloc): <why>");
    }
  }
}

// --- pool-reentrancy -------------------------------------------------------

void CheckPoolReentrancy(const Program& p, const Graph& g,
                         std::vector<Finding>* findings) {
  std::vector<int> roots;
  for (std::size_t i = 0; i < p.defs.size(); ++i) {
    if (p.defs[i].parallel_body) roots.push_back(static_cast<int>(i));
  }
  const Reach r = Bfs(p, g, roots);
  for (std::size_t i = 0; i < p.defs.size(); ++i) {
    if (!r.visited[i]) continue;
    const FunctionDef& def = p.defs[i];
    if (PoolExemptFile(def.file)) continue;
    for (std::size_t c : g.calls_from[i]) {
      const CallSite& call = p.calls[c];
      if (call.callee != "ParallelFor" && call.callee != "Submit") continue;
      Report(p, findings, def.file, call.line, kPoolReentrancy,
             "nested pool submission: " + call.callee + " is called from "
             "code reachable from a parallel body (" +
                 PathTo(p, r, static_cast<int>(i)) + ")",
             "nested ParallelFor/Submit runs inline on the submitting worker "
             "(see ThreadPool), so this silently serializes; hoist the inner "
             "fan-out, or bless a deliberate inline degradation (the shard "
             "fan-out idiom) with // lint: allow(pool-reentrancy): <why>");
    }
  }
}

// --- pragma application ----------------------------------------------------

bool Suppressed(const Program& p, const Finding& f) {
  auto it = p.file_pragmas.find(f.file);
  if (it == p.file_pragmas.end()) return false;
  for (const Pragma& pragma : it->second.pragmas) {
    if (pragma.rule != f.rule) continue;
    if (pragma.line == f.line ||
        (pragma.standalone && pragma.line + 1 == f.line)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<Finding> RunAnalyzeRules(const Program& program) {
  const Graph g = BuildGraph(program);
  std::vector<Finding> findings;
  CheckRngEscape(program, g, &findings);
  CheckBorrowAcrossMutation(program, g, &findings);
  CheckHotPathAlloc(program, g, &findings);
  CheckPoolReentrancy(program, g, &findings);

  // One finding per (file, line, rule): a site reachable from several roots
  // is still one thing to fix.
  std::set<std::string> seen;
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    const std::string key = f.file + ":" + std::to_string(f.line) + ":" +
                            f.rule;
    if (!seen.insert(key).second) continue;
    if (Suppressed(program, f)) continue;
    kept.push_back(std::move(f));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    return a.line < b.line;
  });
  return kept;
}

}  // namespace pafeat_lint
