#ifndef PAFEAT_TOOLS_LINT_SARIF_H_
#define PAFEAT_TOOLS_LINT_SARIF_H_

#include <string>
#include <vector>

#include "rules.h"

namespace pafeat_lint {

// Renders findings as a minimal SARIF 2.1.0 log (one run, one tool, one
// result per finding) so CI systems and editors that ingest SARIF can show
// both the token stage and the semantic stage from a single artifact.
// `tool_name` is "pafeat-lint" or "pafeat-analyze".
std::string ToSarif(const std::string& tool_name,
                    const std::vector<Finding>& findings);

}  // namespace pafeat_lint

#endif  // PAFEAT_TOOLS_LINT_SARIF_H_
