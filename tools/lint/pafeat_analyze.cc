// pafeat-analyze: cross-TU semantic stage of the in-house static analysis.
//
// Where pafeat-lint pattern-matches tokens file-by-file, this pass builds a
// declaration/definition index and a call graph over the whole tree (default:
// src/ relative to --root) and runs reachability rules that promote the
// repo's runtime contracts to static, whole-program guarantees:
//
//   rng-escape              nothing reachable from a ParallelFor/Submit body
//                           touches the shared root `rng_` (classes annotated
//                           `// analyze: root-rng` on the member); forked
//                           streams flow in by value instead
//   borrow-across-mutation  no call path from a scope holding a
//                           ReplayBuffer::ReadGuard to AddTrajectory — the
//                           PF_DCHECK borrow flag, decided at analysis time
//   hot-path-alloc          functions reachable from steady-state roots
//                           (`// analyze: hot-path-root`) do not allocate
//                           outside the tensor/arena TUs
//   pool-reentrancy         no nested pool submission (it degrades to inline
//                           execution); the deliberate shard fan-out idiom
//                           carries a justified pragma
//
// Deliberate exceptions reuse the token stage's pragma machinery:
//   // lint: allow(<rule>): <justification>
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error.
//
// Usage:
//   pafeat-analyze [--root DIR] [--format=human|machine|sarif]
//                  [--list-rules] [--self-test] [DIR_OR_FILE...]

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze_rules.h"
#include "index.h"
#include "sarif.h"

namespace pafeat_lint {
namespace {

namespace fs = std::filesystem;

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".cpp" || ext == ".h" || ext == ".hpp" ||
         ext == ".inl";
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

void CollectFiles(const fs::path& target, std::vector<fs::path>* files) {
  if (fs::is_regular_file(target)) {
    if (HasSourceExtension(target)) files->push_back(target);
    return;
  }
  std::vector<fs::path> found;
  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(target)) {
    if (entry.is_regular_file() && HasSourceExtension(entry.path())) {
      found.push_back(entry.path());
    }
  }
  std::sort(found.begin(), found.end());
  files->insert(files->end(), found.begin(), found.end());
}

int AnalyzeFiles(const std::vector<fs::path>& files,
                 const std::string& format) {
  Program program;
  for (const fs::path& path : files) {
    std::string content;
    if (!ReadFile(path, &content)) {
      std::cerr << "pafeat-analyze: cannot read " << path << "\n";
      return 2;
    }
    const std::string display = path.generic_string();
    const std::string norm = fs::absolute(path).generic_string();
    IndexFile(display, norm, Lex(norm, content), &program);
  }
  FinalizeProgram(&program);
  const std::vector<Finding> findings = RunAnalyzeRules(program);

  if (format == "sarif") {
    std::cout << ToSarif("pafeat-analyze", findings);
    return findings.empty() ? 0 : 1;
  }
  for (const Finding& f : findings) {
    if (format == "machine") {
      std::cout << f.file << ":" << f.line << " " << f.rule << "\n";
    } else {
      std::cout << f.file << ":" << f.line << ": error: [" << f.rule << "] "
                << f.message << "\n";
      if (!f.hint.empty()) std::cout << "  hint: " << f.hint << "\n";
    }
  }
  if (format == "human") {
    if (findings.empty()) {
      std::cout << "pafeat-analyze: " << files.size() << " files, "
                << program.defs.size() << " definitions, "
                << program.calls.size() << " call sites — clean\n";
    } else {
      std::cout << "pafeat-analyze: " << findings.size()
                << " finding(s) across " << files.size() << " files\n";
    }
  }
  return findings.empty() ? 0 : 1;
}

// --- self test -------------------------------------------------------------
// Multi-file fixtures (the rules are cross-TU, so cases carry several
// pretend TUs); expectations are sorted rule multisets, mirroring the token
// stage's self-test harness.

struct SelfFile {
  const char* path;
  const char* source;
};

struct SelfCase {
  const char* name;
  std::vector<SelfFile> files;
  std::vector<std::string> expected_rules;
};

// Shared fixture fragments. The class header mirrors src/core/feat.h: the
// root stream is annotated on the member declaration.
constexpr char kFeatHeader[] =
    "class Feat {\n"
    " public:\n"
    "  void Collect();\n"
    "  int StepShard(int s);\n"
    " private:\n"
    "  int seed_ = 0;\n"
    "  Rng rng_;  // analyze: root-rng\n"
    "};\n";

int SelfTest() {
  const std::vector<SelfCase> cases = {
      // --- rng-escape ------------------------------------------------------
      // The acceptance fixture: replace the forked shard stream with a direct
      // root `rng_` use (i.e. delete the `Rng::Fork` discipline) and the
      // analyzer catches it.
      {"rng-escape-direct-touch",
       {{"src/core/feat.h", kFeatHeader},
        {"src/core/feat.cc",
         "void Feat::Collect() {\n"
         "  ThreadPool::Global()->ParallelFor(4, 4, [&](int s) {\n"
         "    rng_.UniformInt(s);\n"
         "  });\n"
         "}\n"}},
       {"rng-escape"}},
      {"rng-escape-cross-tu",
       {{"src/core/feat.h", kFeatHeader},
        {"src/core/feat.cc",
         "void Feat::Collect() {\n"
         "  ThreadPool::Global()->ParallelFor(4, 4, [&](int s) {\n"
         "    StepShard(s);\n"
         "  });\n"
         "}\n"},
        {"src/core/feat_step.cc",
         "int Feat::StepShard(int s) { return rng_.UniformInt(s); }\n"}},
       {"rng-escape"}},
      {"rng-escape-forked-stream-ok",
       {{"src/core/feat.h", kFeatHeader},
        {"src/core/feat.cc",
         "void Feat::Collect() {\n"
         "  Rng shard_root(seed_);\n"
         "  ThreadPool::Global()->ParallelFor(4, 4, [&](int s) {\n"
         "    Rng shard_rng = shard_root.Fork(0, s);\n"
         "    shard_rng.UniformInt(s);\n"
         "  });\n"
         "}\n"}},
       {}},
      {"rng-escape-serial-use-ok",
       {{"src/core/feat.h", kFeatHeader},
        {"src/core/feat.cc",
         "void Feat::Collect() {\n"
         "  int episodes = rng_.UniformInt(8);\n"
         "  (void)episodes;\n"
         "}\n"}},
       {}},
      {"rng-escape-unannotated-member-ok",
       {{"src/rl/driver.h",
         "class Driver {\n"
         " public:\n"
         "  void Run();\n"
         "  int Step();\n"
         " private:\n"
         "  Rng rng_;  // forked per-episode stream, not a root\n"
         "};\n"},
        {"src/rl/driver.cc",
         "void Driver::Run() {\n"
         "  ThreadPool::Global()->ParallelFor(4, 4, [&](int i) {\n"
         "    Step();\n"
         "  });\n"
         "}\n"
         "int Driver::Step() { return rng_.UniformInt(2); }\n"}},
       {}},
      {"rng-escape-pragma",
       {{"src/core/feat.h", kFeatHeader},
        {"src/core/feat.cc",
         "void Feat::Collect() {\n"
         "  ThreadPool::Global()->ParallelFor(4, 4, [&](int s) {\n"
         "    // lint: allow(rng-escape): seeding probe, single worker only\n"
         "    rng_.UniformInt(s);\n"
         "  });\n"
         "}\n"}},
       {}},
      // --- borrow-across-mutation ------------------------------------------
      // The acceptance fixture: a borrow window that reaches AddTrajectory —
      // the static form of the PF_DCHECK that a deleted runtime check would
      // no longer catch.
      {"borrow-reaches-mutation",
       {{"src/rl/learner.cc",
         "void Train(ReplayBuffer& buffer) {\n"
         "  ReplayBuffer::ReadGuard guard(buffer);\n"
         "  Refill(buffer);\n"
         "}\n"
         "void Refill(ReplayBuffer& buffer) {\n"
         "  buffer.AddTrajectory(1);\n"
         "}\n"}},
       {"borrow-across-mutation"}},
      {"borrow-direct-mutation",
       {{"src/rl/learner.cc",
         "void Train(ReplayBuffer& buffer) {\n"
         "  ReplayBuffer::ReadGuard guard(buffer);\n"
         "  buffer.AddTrajectory(1);\n"
         "}\n"}},
       {"borrow-across-mutation"}},
      {"borrow-scope-ended-ok",
       {{"src/rl/learner.cc",
         "void Train(ReplayBuffer& buffer) {\n"
         "  {\n"
         "    ReplayBuffer::ReadGuard guard(buffer);\n"
         "    Materialize(buffer);\n"
         "  }\n"
         "  Refill(buffer);\n"
         "}\n"
         "void Materialize(ReplayBuffer& buffer) {}\n"
         "void Refill(ReplayBuffer& buffer) {\n"
         "  buffer.AddTrajectory(1);\n"
         "}\n"}},
       {}},
      {"borrow-cleared-ok",
       {{"src/rl/learner.cc",
         "void Train(ReplayBuffer& buffer) {\n"
         "  std::vector<ReplayBuffer::ReadGuard> guards;\n"
         "  guards.emplace_back(buffer);\n"
         "  guards.clear();\n"
         "  buffer.AddTrajectory(1);\n"
         "}\n"}},
       {}},
      // Eviction is a mutation site too: EvictToBudget removes trajectories
      // outside any insertion, so a borrow window reaching it is the same
      // use-after-compaction hazard as one reaching AddTrajectory.
      {"borrow-reaches-eviction",
       {{"src/rl/learner.cc",
         "void Train(ReplayBuffer& buffer) {\n"
         "  ReplayBuffer::ReadGuard guard(buffer);\n"
         "  Shrink(buffer);\n"
         "}\n"
         "void Shrink(ReplayBuffer& buffer) {\n"
         "  buffer.EvictToBudget();\n"
         "}\n"}},
       {"borrow-across-mutation"}},
      {"eviction-outside-borrow-ok",
       {{"src/rl/learner.cc",
         "void Train(ReplayBuffer& buffer) {\n"
         "  {\n"
         "    ReplayBuffer::ReadGuard guard(buffer);\n"
         "    Materialize(buffer);\n"
         "  }\n"
         "  buffer.EvictToBudget();\n"
         "}\n"
         "void Materialize(ReplayBuffer& buffer) {}\n"}},
       {}},
      {"borrow-pragma",
       {{"src/rl/learner.cc",
         "void Train(ReplayBuffer& buffer) {\n"
         "  ReplayBuffer::ReadGuard guard(buffer);\n"
         "  // lint: allow(borrow-across-mutation): buffer is a shard-local\n"
         "  buffer.AddTrajectory(1);\n"
         "}\n"}},
       {}},
      // --- hot-path-alloc --------------------------------------------------
      {"hot-path-alloc-through-helper",
       {{"src/rl/driver.cc",
         "// analyze: hot-path-root\n"
         "void Driver::Step() { WriteObs(); }\n"
         "void WriteObs() {\n"
         "  obs.push_back(1.0f);\n"
         "}\n"}},
       {"hot-path-alloc"}},
      {"hot-path-alloc-new-and-make-unique",
       {{"src/rl/driver.cc",
         "// analyze: hot-path-root\n"
         "void Driver::Step() {\n"
         "  float* p = new float[8];\n"
         "  auto q = std::make_unique<int>(3);\n"
         "}\n"}},
       {"hot-path-alloc", "hot-path-alloc"}},
      {"hot-path-alloc-tensor-tu-exempt",
       {{"src/rl/driver.cc",
         "// analyze: hot-path-root\n"
         "void Driver::Step() { MatMul(); }\n"},
        {"src/tensor/matrix.cc",
         "void MatMul() { scratch.resize(64); }\n"}},
       {}},
      {"hot-path-alloc-unreachable-ok",
       {{"src/rl/driver.cc",
         "// analyze: hot-path-root\n"
         "void Driver::Step() { WriteObs(); }\n"
         "void WriteObs() { obs[0] = 1.0f; }\n"
         "void Reset() { obs.resize(64); }\n"}},
       {}},
      {"hot-path-alloc-pragma",
       {{"src/rl/driver.cc",
         "// analyze: hot-path-root\n"
         "void Driver::Step() {\n"
         "  // lint: allow(hot-path-alloc): one-time warmup before the loop\n"
         "  cache.reserve(64);\n"
         "}\n"}},
       {}},
      // --- pool-reentrancy -------------------------------------------------
      {"pool-reentrancy-nested",
       {{"src/core/feat.cc",
         "void Outer() {\n"
         "  ThreadPool::Global()->ParallelFor(4, 4, [&](int s) {\n"
         "    Inner(s);\n"
         "  });\n"
         "}\n"
         "void Inner(int s) {\n"
         "  ThreadPool::Global()->ParallelFor(8, 8, [&](int j) {\n"
         "    Work(j);\n"
         "  });\n"
         "}\n"}},
       {"pool-reentrancy"}},
      {"pool-reentrancy-blessed-fanout",
       {{"src/core/feat.cc",
         "void Outer() {\n"
         "  ThreadPool::Global()->ParallelFor(4, 4, [&](int s) {\n"
         "    Inner(s);\n"
         "  });\n"
         "}\n"
         "void Inner(int s) {\n"
         "  // lint: allow(pool-reentrancy): shard fan-out degrades inline\n"
         "  ThreadPool::Global()->ParallelFor(8, 8, [&](int j) {\n"
         "    Work(j);\n"
         "  });\n"
         "}\n"}},
       {}},
      {"pool-reentrancy-top-level-ok",
       {{"src/core/feat.cc",
         "void Outer() {\n"
         "  ThreadPool::Global()->ParallelFor(4, 4, [&](int s) {\n"
         "    Work(s);\n"
         "  });\n"
         "  ThreadPool::Global()->ParallelFor(4, 4, [&](int s) {\n"
         "    Work(s);\n"
         "  });\n"
         "}\n"}},
       {}},
      {"pool-reentrancy-pool-tu-exempt",
       {{"src/common/thread_pool.cc",
         "void ThreadPool::ParallelFor(int n, int k, Fn fn) {\n"
         "  Submit([&] { Drain(); });\n"
         "}\n"
         "void Drain() {\n"
         "  ThreadPool::Global()->Submit([&] { Work(); });\n"
         "}\n"}},
       {}},
  };

  int failures = 0;
  for (const SelfCase& c : cases) {
    Program program;
    for (const SelfFile& f : c.files) {
      IndexFile(f.path, f.path, Lex(f.path, f.source), &program);
    }
    FinalizeProgram(&program);
    std::vector<std::string> got;
    for (const Finding& f : RunAnalyzeRules(program)) got.push_back(f.rule);
    std::sort(got.begin(), got.end());
    std::vector<std::string> want = c.expected_rules;
    std::sort(want.begin(), want.end());
    if (got != want) {
      ++failures;
      std::cout << "FAIL " << c.name << ": expected {";
      for (const std::string& r : want) std::cout << r << " ";
      std::cout << "} got {";
      for (const std::string& r : got) std::cout << r << " ";
      std::cout << "}\n";
    } else {
      std::cout << "ok   " << c.name << "\n";
    }
  }
  std::cout << (failures == 0 ? "self-test passed (" : "self-test FAILED (")
            << cases.size() - failures << "/" << cases.size() << " cases)\n";
  return failures == 0 ? 0 : 1;
}

int Run(int argc, char** argv) {
  std::string root = ".";
  std::string format = "human";
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") return SelfTest();
    if (arg == "--list-rules") {
      std::cout << "rng-escape\nborrow-across-mutation\nhot-path-alloc\n"
                   "pool-reentrancy\n";
      return 0;
    }
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "human" && format != "machine" && format != "sarif") {
        std::cerr << "pafeat-analyze: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pafeat-analyze [--root DIR] "
                   "[--format=human|machine|sarif] [--list-rules] "
                   "[--self-test] [DIR_OR_FILE...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "pafeat-analyze: unknown flag '" << arg << "'\n";
      return 2;
    } else {
      targets.push_back(arg);
    }
  }
  // The semantic pass is whole-program: default to src/ (tests exercise the
  // contracts dynamically and deliberately poke at internals).
  if (targets.empty()) targets = {"src"};

  std::vector<fs::path> files;
  for (const std::string& t : targets) {
    fs::path p = fs::path(t);
    if (p.is_relative()) p = fs::path(root) / p;
    if (!fs::exists(p)) {
      std::cerr << "pafeat-analyze: no such file or directory: " << p << "\n";
      return 2;
    }
    CollectFiles(p, &files);
  }
  return AnalyzeFiles(files, format);
}

}  // namespace
}  // namespace pafeat_lint

int main(int argc, char** argv) { return pafeat_lint::Run(argc, argv); }
