#ifndef PAFEAT_TOOLS_LINT_RULES_H_
#define PAFEAT_TOOLS_LINT_RULES_H_

#include <string>
#include <vector>

namespace pafeat_lint {

// One rule violation. `rule` is the stable machine-readable id (also the
// name accepted by `// lint: allow(<rule>): <justification>` pragmas).
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string hint;  // fix-it guidance, empty for pragma bookkeeping rules
};

struct FileInput {
  std::string display_path;  // printed in findings (as passed on the CLI)
  std::string norm_path;     // forward-slash path used for allowlist matching
  std::string content;
  // Content of the companion header (foo.h next to foo.cc), if any. Used so
  // iteration rules see container members declared in the header.
  std::string companion_content;
};

// The rule ids a pragma may name, i.e. the pragma allowlist.
const std::vector<std::string>& KnownRules();

// Lexes the file and runs every rule, applying `lint: allow` pragmas.
// Returned findings are sorted by line.
std::vector<Finding> RunRules(const FileInput& file);

}  // namespace pafeat_lint

#endif  // PAFEAT_TOOLS_LINT_RULES_H_
