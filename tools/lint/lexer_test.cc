// Direct unit tests for the shared lint/analyze lexer. The rule self-tests
// cover it indirectly, but the lexer now feeds two stages (token rules and
// the cross-TU semantic index), so the tricky lexical corners get pinned
// down here: raw-string delimiters, line splices inside comments, adjacent
// string literals, and the pragma/annotation comment channels.

#include "lexer.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace pafeat_lint {
namespace {

const Token* FindToken(const LexResult& r, const std::string& text) {
  for (const Token& t : r.tokens) {
    if (t.text == text) return &t;
  }
  return nullptr;
}

TEST(LexerTest, RawStringCustomDelimiter) {
  // The closer is )xy" — a plain )" inside the literal must not end it.
  const LexResult r =
      Lex("t.cc", "auto s = R\"xy(a \"quote\" and )\" inside)xy\" + 1;\n");
  const Token* str = nullptr;
  for (const Token& t : r.tokens) {
    if (t.kind == TokKind::kString) {
      EXPECT_EQ(str, nullptr) << "exactly one string literal expected";
      str = &t;
    }
  }
  ASSERT_NE(str, nullptr);
  EXPECT_EQ(str->text, "a \"quote\" and )\" inside");
  // The tokens after the literal survive intact.
  EXPECT_NE(FindToken(r, "+"), nullptr);
  EXPECT_NE(FindToken(r, "1"), nullptr);
}

TEST(LexerTest, RawStringEmptyDelimiterStopsAtFirstCloser) {
  const LexResult r = Lex("t.cc", "auto s = R\"(abc)\";\nint tail = 0;\n");
  const Token* str = FindToken(r, "abc");
  ASSERT_NE(str, nullptr);
  EXPECT_EQ(str->kind, TokKind::kString);
  EXPECT_NE(FindToken(r, "tail"), nullptr);
}

TEST(LexerTest, RawStringKeepsLineNumbersAcrossNewlines) {
  const LexResult r =
      Lex("t.cc", "auto s = R\"(line1\nline2\nline3)\";\nint after = 0;\n");
  const Token* after = FindToken(r, "after");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->line, 4);
  // Rule passes must never see the literal's content as code.
  EXPECT_EQ(FindToken(r, "line2"), nullptr);
}

TEST(LexerTest, LineSpliceContinuesLineComment) {
  // The backslash-newline splices the second physical line into the
  // comment; rand() there is commentary, not code.
  const LexResult r = Lex("t.cc",
                          "int a = 1;  // trailing comment \\\n"
                          "rand();\n"
                          "int b = 2;\n");
  EXPECT_EQ(FindToken(r, "rand"), nullptr);
  const Token* b = FindToken(r, "b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->line, 3);
}

TEST(LexerTest, LineSpliceChainsAcrossSeveralLines) {
  const LexResult r = Lex("t.cc",
                          "// one \\\n"
                          "two \\\n"
                          "three\n"
                          "int x = 0;\n");
  EXPECT_EQ(FindToken(r, "two"), nullptr);
  EXPECT_EQ(FindToken(r, "three"), nullptr);
  const Token* x = FindToken(r, "x");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->line, 4);
}

TEST(LexerTest, PpDirectiveJoinsContinuations) {
  const LexResult r = Lex("t.cc",
                          "#define STEP(i) \\\n"
                          "  DoStep(i)\n"
                          "int y = 0;\n");
  ASSERT_FALSE(r.tokens.empty());
  EXPECT_EQ(r.tokens[0].kind, TokKind::kPpDirective);
  // Continuation lines are part of the directive token, not code.
  EXPECT_NE(r.tokens[0].text.find("DoStep"), std::string::npos);
  EXPECT_EQ(FindToken(r, "DoStep"), nullptr);
  const Token* y = FindToken(r, "y");
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->line, 3);
}

TEST(LexerTest, AdjacentStringLiteralsStaySeparateTokens) {
  const LexResult r = Lex("t.cc", "const char* s = \"abc\" \"def\";\n");
  std::vector<std::string> strings;
  for (const Token& t : r.tokens) {
    if (t.kind == TokKind::kString) strings.push_back(t.text);
  }
  ASSERT_EQ(strings.size(), 2u);
  EXPECT_EQ(strings[0], "abc");
  EXPECT_EQ(strings[1], "def");
}

TEST(LexerTest, EscapedQuoteDoesNotEndStringLiteral) {
  const LexResult r = Lex("t.cc", "const char* s = \"a\\\"b\"; int z;\n");
  const Token* str = nullptr;
  for (const Token& t : r.tokens) {
    if (t.kind == TokKind::kString) str = &t;
  }
  ASSERT_NE(str, nullptr);
  EXPECT_EQ(str->text, "a\\\"b");
  EXPECT_NE(FindToken(r, "z"), nullptr);
}

TEST(LexerTest, CommentBodiesProduceNoTokens) {
  const LexResult r =
      Lex("t.cc", "// rand() mt19937\n/* std::thread t; */\nint k;\n");
  EXPECT_EQ(FindToken(r, "rand"), nullptr);
  EXPECT_EQ(FindToken(r, "thread"), nullptr);
  const Token* k = FindToken(r, "k");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->line, 3);
}

TEST(LexerTest, TwoCharPunctsAreSingleTokens) {
  const LexResult r = Lex("t.cc", "a->b; c::d;\n");
  EXPECT_NE(FindToken(r, "->"), nullptr);
  EXPECT_NE(FindToken(r, "::"), nullptr);
}

TEST(LexerTest, PragmaCaptureTrailingAndStandalone) {
  const LexResult r = Lex("t.cc",
                          "// lint: allow(raw-thread): stress harness\n"
                          "std::thread t;  // lint: allow(raw-thread)\n");
  ASSERT_EQ(r.pragmas.size(), 2u);
  EXPECT_EQ(r.pragmas[0].rule, "raw-thread");
  EXPECT_EQ(r.pragmas[0].justification, "stress harness");
  EXPECT_TRUE(r.pragmas[0].standalone);
  EXPECT_EQ(r.pragmas[1].line, 2);
  EXPECT_FALSE(r.pragmas[1].standalone);
  EXPECT_TRUE(r.pragmas[1].justification.empty());
}

TEST(LexerTest, AnnotationCaptureTrailingAndStandalone) {
  const LexResult r = Lex("t.cc",
                          "// analyze: hot-path-root\n"
                          "void Step() {}\n"
                          "Rng rng_;  // analyze: root-rng\n");
  ASSERT_EQ(r.annotations.size(), 2u);
  EXPECT_EQ(r.annotations[0].text, "hot-path-root");
  EXPECT_TRUE(r.annotations[0].standalone);
  EXPECT_EQ(r.annotations[0].line, 1);
  EXPECT_EQ(r.annotations[1].text, "root-rng");
  EXPECT_FALSE(r.annotations[1].standalone);
  EXPECT_EQ(r.annotations[1].line, 3);
}

}  // namespace
}  // namespace pafeat_lint
