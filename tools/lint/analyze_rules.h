#ifndef PAFEAT_TOOLS_LINT_ANALYZE_RULES_H_
#define PAFEAT_TOOLS_LINT_ANALYZE_RULES_H_

#include <vector>

#include "index.h"
#include "rules.h"

namespace pafeat_lint {

// Runs the four semantic reachability rules over a finalized Program:
//
//   rng-escape              no function reachable from a ParallelFor/Submit
//                           body touches a root-annotated Rng member; only
//                           forked streams may flow into parallel code
//   borrow-across-mutation  no call path from a statement range holding a
//                           ReplayBuffer::ReadGuard to AddTrajectory
//   hot-path-alloc          no allocation reachable from a function
//                           annotated `// analyze: hot-path-root`, outside
//                           the tensor/arena TUs
//   pool-reentrancy         no ParallelFor/Submit call reachable from a
//                           parallel body (nested submission runs inline;
//                           the blessed shard fan-out idiom carries a
//                           justified pragma instead of a code change)
//
// `lint: allow(<rule>): <why>` pragmas recorded in Program::file_pragmas are
// applied with the same same-line / standalone-line-above semantics as the
// token rules. Findings are sorted by (file, line).
std::vector<Finding> RunAnalyzeRules(const Program& program);

}  // namespace pafeat_lint

#endif  // PAFEAT_TOOLS_LINT_ANALYZE_RULES_H_
