#include "rules.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

#include "lexer.h"

namespace pafeat_lint {
namespace {

// ---------------------------------------------------------------------------
// Rule ids. These are the repo's determinism/ownership contract, spelled out
// in DESIGN.md "Determinism contract & correctness tooling".
constexpr char kRandomness[] = "randomness";
constexpr char kRawThread[] = "raw-thread";
constexpr char kUnorderedIter[] = "unordered-iter";
constexpr char kRawAlloc[] = "raw-alloc";
constexpr char kIncludeGuard[] = "include-guard";
constexpr char kSingleRowQ[] = "single-row-q";
constexpr char kIntrinsics[] = "intrinsics-only-in-kernel-tus";
constexpr char kLintPragma[] = "lint-pragma";

constexpr char kRandomnessHint[] =
    "use pafeat::Rng (src/common/rng.h): every stochastic component takes an "
    "explicitly seeded Rng so runs replay bit-identically";
constexpr char kRawThreadHint[] =
    "route parallelism through ThreadPool::Global()->ParallelFor "
    "(src/common/thread_pool.h) so the thread-count determinism contract "
    "holds; deliberate uses need // lint: allow(raw-thread): <why>";
constexpr char kUnorderedIterHint[] =
    "unordered container iteration order is not deterministic; iterate a "
    "sorted copy of the keys, or annotate the line with "
    "// lint: allow(unordered-iter): <why order cannot reach results>";
constexpr char kRawAllocHint[] =
    "use std::vector / std::make_unique, Matrix (src/tensor/), or "
    "InferenceArena scratch (src/nn/workspace.h) so ASan/checked builds see "
    "every buffer";
constexpr char kSingleRowQHint[] =
    "route Q queries through the batched inference plane — DqnAgent::ActBatch "
    "/ QValuesBatchInto or DuelingNet::PredictBatchInto (DESIGN.md \"Batched "
    "inference plane\"); batched rows are bit-identical to single-row "
    "queries. Legacy-reference call sites (e.g. equivalence tests) need "
    "// lint: allow(single-row-q): <why>";
constexpr char kIntrinsicsHint[] =
    "SIMD intrinsics live only in the per-capability kernel TUs "
    "(src/tensor/kernels_*.cc) selected by the SimdCapability dispatch "
    "(src/tensor/kernels.cc); everything else calls the dispatched entry "
    "points so the one-time probe decides capability for the whole binary. "
    "Deliberate uses need "
    "// lint: allow(intrinsics-only-in-kernel-tus): <why>";

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsHeaderPath(const std::string& path) {
  return EndsWith(path, ".h") || EndsWith(path, ".hpp");
}

// Files allowed to own randomness / raw threads / raw allocation.
bool RandomnessAllowed(const std::string& path) {
  return Contains(path, "src/common/rng.");
}
bool RawThreadAllowed(const std::string& path) {
  return Contains(path, "src/common/thread_pool.");
}
bool RawAllocAllowed(const std::string& path) {
  return Contains(path, "src/tensor/") || Contains(path, "src/nn/workspace.");
}
// The plane's own implementation (src/nn/) legitimately contains the
// single-row delegation.
bool SingleRowQAllowed(const std::string& path) {
  return Contains(path, "src/nn/");
}
// Per-capability kernel TUs (kernels_generic.cc / kernels_avx2.cc /
// kernels_avx512.cc and the shared kernels_impl.inl) own all intrinsics.
bool IntrinsicsAllowed(const std::string& path) {
  return Contains(path, "src/tensor/kernels_");
}

struct Ctx {
  const FileInput* file = nullptr;
  const std::vector<Token>* toks = nullptr;
  std::vector<Finding>* findings = nullptr;
};

void Report(const Ctx& ctx, int line, const char* rule, std::string message,
            const char* hint) {
  ctx.findings->push_back(
      Finding{ctx.file->display_path, line, rule, std::move(message), hint});
}

const Token* Prev(const Ctx& ctx, std::size_t i) {
  return i > 0 ? &(*ctx.toks)[i - 1] : nullptr;
}
const Token* Next(const Ctx& ctx, std::size_t i) {
  return i + 1 < ctx.toks->size() ? &(*ctx.toks)[i + 1] : nullptr;
}

bool PrevIsMemberAccess(const Ctx& ctx, std::size_t i) {
  const Token* p = Prev(ctx, i);
  return p != nullptr && p->kind == TokKind::kPunct &&
         (p->text == "." || p->text == "->");
}

bool NextIsText(const Ctx& ctx, std::size_t i, const char* text) {
  const Token* n = Next(ctx, i);
  return n != nullptr && n->text == text;
}

// --- R1: randomness sources -----------------------------------------------

void CheckRandomness(const Ctx& ctx) {
  if (RandomnessAllowed(ctx.file->norm_path)) return;
  const std::vector<Token>& toks = *ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;
    if (PrevIsMemberAccess(ctx, i)) continue;
    const std::string& s = t.text;
    const bool call_only = s == "rand" || s == "srand" || s == "rand_r" ||
                           s == "drand48" || s == "lrand48" ||
                           s == "random_shuffle";
    const bool any_use = s == "random_device" || s == "mt19937" ||
                         s == "mt19937_64" || s == "minstd_rand" ||
                         s == "default_random_engine";
    if ((call_only && NextIsText(ctx, i, "(")) || any_use) {
      Report(ctx, t.line, kRandomness,
             "non-deterministic randomness source '" + s +
                 "' outside src/common/rng.*",
             kRandomnessHint);
    }
  }
}

// --- R2: raw threading -----------------------------------------------------

void CheckRawThread(const Ctx& ctx) {
  if (RawThreadAllowed(ctx.file->norm_path)) return;
  const std::vector<Token>& toks = *ctx.toks;
  for (std::size_t i = 2; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;
    if (!(toks[i - 1].text == "::" && toks[i - 2].text == "std")) continue;
    if (t.text == "thread" || t.text == "jthread") {
      // std::thread::id / std::thread::hardware_concurrency are queries, not
      // thread construction; only the type used bare counts.
      if (NextIsText(ctx, i, "::")) continue;
      Report(ctx, t.line, kRawThread,
             "raw std::" + t.text + " outside src/common/thread_pool.*",
             kRawThreadHint);
    } else if (t.text == "async") {
      Report(ctx, t.line, kRawThread,
             "std::async outside src/common/thread_pool.*", kRawThreadHint);
    }
  }
}

// --- R3: unordered container iteration -------------------------------------

bool IsUnorderedContainerName(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

// Skips a balanced template argument list starting at toks[i] == "<".
// Returns the index one past the matching ">". Tolerates ">>" being split
// into single-char tokens by the lexer (it is).
std::size_t SkipTemplateArgs(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const std::string& s = toks[i].text;
    if (s == "<") ++depth;
    if (s == ">" && --depth == 0) return i + 1;
    if (s == ";") break;  // malformed / not a template after all
  }
  return i;
}

// Names declared (in this file or its companion header) with an unordered
// container type, plus `using X = std::unordered_map<...>` aliases.
void CollectUnorderedNames(const std::vector<Token>& toks,
                           std::set<std::string>* names) {
  std::set<std::string> alias_types;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    const bool unordered = IsUnorderedContainerName(toks[i].text) ||
                           alias_types.count(toks[i].text) > 0;
    if (!unordered) continue;
    // `using Alias = [std::]unordered_map<...>;` records Alias as a
    // container type so later `Alias foo;` declarations are tracked too.
    std::size_t b = i;
    if (b >= 2 && toks[b - 1].text == "::" && toks[b - 2].text == "std") {
      b -= 2;
    }
    if (b >= 3 && toks[b - 1].text == "=" && toks[b - 3].text == "using") {
      alias_types.insert(toks[b - 2].text);
      continue;
    }
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") j = SkipTemplateArgs(toks, j);
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdentifier) {
      names->insert(toks[j].text);
    }
  }
}

void CheckUnorderedIter(const Ctx& ctx) {
  std::set<std::string> names;
  CollectUnorderedNames(*ctx.toks, &names);
  if (!ctx.file->companion_content.empty()) {
    LexResult companion =
        Lex(ctx.file->norm_path, ctx.file->companion_content);
    CollectUnorderedNames(companion.tokens, &names);
  }
  if (names.empty()) return;

  const std::vector<Token>& toks = *ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Range-for whose range expression mentions an unordered container.
    if (toks[i].text == "for" && NextIsText(ctx, i, "(")) {
      int depth = 0;
      bool seen_colon = false;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        const std::string& s = toks[j].text;
        if (s == "(") ++depth;
        if (s == ")" && --depth == 0) break;
        if (s == ";") break;  // classic for
        if (depth == 1 && s == ":") {
          seen_colon = true;
          continue;
        }
        if (seen_colon && toks[j].kind == TokKind::kIdentifier &&
            names.count(s) > 0) {
          Report(ctx, toks[i].line, kUnorderedIter,
                 "range-for over unordered container '" + s + "'",
                 kUnorderedIterHint);
          break;
        }
      }
    }
    // Iterator loops: cache_.begin() / it != cache_.end() etc.
    if (toks[i].kind == TokKind::kIdentifier && names.count(toks[i].text) &&
        i + 2 < toks.size() &&
        (toks[i + 1].text == "." || toks[i + 1].text == "->")) {
      const std::string& m = toks[i + 2].text;
      if (m == "begin" || m == "cbegin" || m == "rbegin") {
        Report(ctx, toks[i].line, kUnorderedIter,
               "iterator walk over unordered container '" + toks[i].text + "'",
               kUnorderedIterHint);
      }
    }
  }
}

// --- R4: raw allocation ----------------------------------------------------

void CheckRawAlloc(const Ctx& ctx) {
  if (RawAllocAllowed(ctx.file->norm_path)) return;
  const std::vector<Token>& toks = *ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;
    if (PrevIsMemberAccess(ctx, i)) continue;
    const std::string& s = t.text;
    if ((s == "malloc" || s == "calloc" || s == "realloc" ||
         s == "aligned_alloc") &&
        NextIsText(ctx, i, "(")) {
      Report(ctx, t.line, kRawAlloc,
             "raw " + s + "() outside src/tensor/ and src/nn/workspace.*",
             kRawAllocHint);
    }
    if (s == "new") {
      // Array new: a '[' before the initializer/end of the new-expression.
      for (std::size_t j = i + 1; j < toks.size() && j < i + 24; ++j) {
        const std::string& nx = toks[j].text;
        if (nx == "(" || nx == ";" || nx == "{" || nx == "," || nx == ")" ||
            nx == "=") {
          break;
        }
        if (nx == "[") {
          Report(ctx, t.line, kRawAlloc,
                 "raw array new[] outside src/tensor/ and src/nn/workspace.*",
                 kRawAllocHint);
          break;
        }
      }
    }
  }
}

// --- R5: single-row Q queries ----------------------------------------------

// Every Q query outside the plane's implementation must go through the
// batched entry points; a literal `PredictInto(1, ...)` call re-opens the
// per-step single-row path the batched plane retired.
void CheckSingleRowQ(const Ctx& ctx) {
  if (SingleRowQAllowed(ctx.file->norm_path)) return;
  const std::vector<Token>& toks = *ctx.toks;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier || t.text != "PredictInto") continue;
    if (toks[i + 1].text != "(") continue;
    if (toks[i + 2].text == "1" && toks[i + 3].text == ",") {
      Report(ctx, t.line, kSingleRowQ,
             "single-row PredictInto(1, ...) outside the batched inference "
             "plane",
             kSingleRowQHint);
    }
  }
}

// --- R6: SIMD intrinsics confined to kernel TUs ----------------------------

// Vector intrinsic calls (_mm_* / _mm256_* / _mm512_*) and register types
// (__m128* / __m256* / __m512* / __mmask*). Matching on the identifier prefix
// keeps the rule ISA-table-free; plain names like `_map` do not collide with
// the reserved `_mm` / `__m<width>` prefixes.
bool IsSimdIntrinsicName(const std::string& s) {
  for (const char* prefix : {"_mm_", "_mm256_", "_mm512_", "__m128", "__m256",
                             "__m512", "__mmask"}) {
    if (s.compare(0, std::string::traits_type::length(prefix), prefix) == 0) {
      return true;
    }
  }
  return false;
}

void CheckIntrinsics(const Ctx& ctx) {
  if (IntrinsicsAllowed(ctx.file->norm_path)) return;
  const std::vector<Token>& toks = *ctx.toks;
  int last_line = -1;  // one finding per line — a vector expression uses many
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;
    if (!IsSimdIntrinsicName(t.text)) continue;
    if (t.line == last_line) continue;
    last_line = t.line;
    Report(ctx, t.line, kIntrinsics,
           "SIMD intrinsic '" + t.text + "' outside src/tensor/kernels_*.cc",
           kIntrinsicsHint);
  }
}

// --- R7: include guards (the compile-alone half runs in CMake) -------------

std::string ExpectedGuard(const std::string& norm_path) {
  // src/common/rng.h -> PAFEAT_COMMON_RNG_H_ ; other top-level dirs keep
  // their prefix (tools/lint/lexer.h -> PAFEAT_TOOLS_LINT_LEXER_H_).
  std::string rel = norm_path;
  for (const char* marker : {"src/", "tests/", "tools/", "bench/"}) {
    const std::size_t pos = rel.rfind(marker);
    if (pos != std::string::npos) {
      rel = rel.substr(pos);
      if (rel.rfind("src/", 0) == 0) rel = rel.substr(4);
      break;
    }
  }
  std::string guard = "PAFEAT_";
  for (char c : rel) {
    guard.push_back(std::isalnum(static_cast<unsigned char>(c))
                        ? static_cast<char>(
                              std::toupper(static_cast<unsigned char>(c)))
                        : '_');
  }
  guard.push_back('_');
  return guard;
}

// Splits a directive token ("#ifndef X") into words.
std::vector<std::string> DirectiveWords(const std::string& text) {
  std::vector<std::string> words;
  std::istringstream in(text);
  std::string word;
  while (in >> word) {
    if (!words.empty() || word != "#") {
      if (word[0] == '#' && words.empty()) word = word.substr(1);
      if (!word.empty()) words.push_back(word);
    }
  }
  return words;
}

void CheckIncludeGuard(const Ctx& ctx) {
  if (!IsHeaderPath(ctx.file->norm_path)) return;
  const std::string guard = ExpectedGuard(ctx.file->norm_path);
  const std::vector<Token>& toks = *ctx.toks;
  std::vector<const Token*> pp;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kPpDirective) pp.push_back(&t);
  }
  const char* problem = nullptr;
  int line = 1;
  if (pp.size() < 2) {
    problem = "missing include guard";
  } else {
    const std::vector<std::string> first = DirectiveWords(pp[0]->text);
    const std::vector<std::string> second = DirectiveWords(pp[1]->text);
    line = pp[0]->line;
    if (first.size() < 2 || first[0] != "ifndef" || second.size() < 2 ||
        second[0] != "define" || first[1] != second[1]) {
      problem = "header does not start with an #ifndef/#define include guard";
    } else if (first[1] != guard) {
      problem = "include guard does not match the path-derived name";
    }
  }
  if (problem != nullptr) {
    Report(ctx, line, kIncludeGuard, problem,
           ("guard headers with #ifndef " + guard + " / #define " + guard +
            " ... #endif so the per-header self-containment TU check can "
            "include them in any order")
               .c_str());
  }
}

// ---------------------------------------------------------------------------

}  // namespace

const std::vector<std::string>& KnownRules() {
  // The last four ids belong to the semantic pass (pafeat-analyze); they are
  // known here so their `lint: allow` pragmas pass pragma hygiene when the
  // token stage lints a file that carries analyzer suppressions.
  static const std::vector<std::string> kRules = {
      kRandomness,    kRawThread,       kUnorderedIter,
      kRawAlloc,      kSingleRowQ,      kIntrinsics,
      kIncludeGuard,  kLintPragma,      "rng-escape",
      "borrow-across-mutation", "hot-path-alloc", "pool-reentrancy"};
  return kRules;
}

std::vector<Finding> RunRules(const FileInput& file) {
  const LexResult lexed = Lex(file.norm_path, file.content);
  std::vector<Finding> findings;
  Ctx ctx{&file, &lexed.tokens, &findings};
  CheckRandomness(ctx);
  CheckRawThread(ctx);
  CheckUnorderedIter(ctx);
  CheckRawAlloc(ctx);
  CheckSingleRowQ(ctx);
  CheckIntrinsics(ctx);
  CheckIncludeGuard(ctx);

  // Apply pragmas: a pragma suppresses matching findings on its own line,
  // or on the following line when the comment stands alone.
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    bool suppressed = false;
    for (const Pragma& p : lexed.pragmas) {
      if (p.rule != f.rule) continue;
      if (p.line == f.line || (p.standalone && p.line + 1 == f.line)) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(std::move(f));
  }

  // Pragma hygiene: unknown rule names and missing justifications are
  // themselves violations — an allow() without a recorded reason defeats
  // the point of the allowlist.
  for (const Pragma& p : lexed.pragmas) {
    const std::vector<std::string>& known = KnownRules();
    if (std::find(known.begin(), known.end(), p.rule) == known.end()) {
      kept.push_back(Finding{
          file.display_path, p.line, kLintPragma,
          "pragma names unknown rule '" + p.rule + "'",
          "known rules: randomness, raw-thread, unordered-iter, raw-alloc, "
          "single-row-q, intrinsics-only-in-kernel-tus, include-guard, "
          "rng-escape, borrow-across-mutation, hot-path-alloc, "
          "pool-reentrancy"});
    } else if (p.justification.empty()) {
      kept.push_back(Finding{
          file.display_path, p.line, kLintPragma,
          "pragma for '" + p.rule + "' has no justification",
          "write // lint: allow(" + p.rule + "): <why this is safe>"});
    }
  }

  std::sort(kept.begin(), kept.end(),
            [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return kept;
}

}  // namespace pafeat_lint
