// pafeat-lint: in-house static analysis for the PA-FEAT repo.
//
// Walks the given directories (default: src/ tests/ relative to --root) and
// enforces the repo's determinism/ownership contract over every C++ source
// file, with zero dependencies beyond the standard library:
//
//   randomness      all randomness flows through src/common/rng.*
//   raw-thread      all parallelism flows through src/common/thread_pool.*
//   unordered-iter  no iteration-order dependence on unordered containers
//   raw-alloc       no raw new[]/malloc outside the tensor/arena layers
//   single-row-q    no PredictInto(1, ...) Q queries outside the batched
//                   inference plane (src/nn/); everything else funnels
//                   through ActBatch/PredictBatchInto
//   intrinsics-only-in-kernel-tus
//                   SIMD intrinsics (_mm*/__m128/__m256/__m512/__mmask*)
//                   appear only in the per-capability kernel TUs
//                   (src/tensor/kernels_*.cc); everything else goes through
//                   the SimdCapability dispatch in src/tensor/kernels.cc
//   include-guard   headers carry path-derived include guards (the
//                   compile-alone half of header hygiene is the generated
//                   per-header TU target, see tools/lint/CMakeLists.txt)
//
// Deliberate exceptions are annotated in the source:
//   // lint: allow(<rule>): <justification>
// on the offending line, or standing alone on the line above it. A pragma
// without a justification (or naming an unknown rule) is itself an error.
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error.
//
// Usage:
//   pafeat-lint [--root DIR] [--format=human|machine|sarif] [--list-rules]
//               [--self-test] [DIR_OR_FILE...]
//
// The cross-TU semantic stage lives in the sibling binary pafeat-analyze
// (same lexer, same pragma machinery); see pafeat_analyze.cc.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "rules.h"
#include "sarif.h"

namespace pafeat_lint {
namespace {

namespace fs = std::filesystem;

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".cpp" || ext == ".h" || ext == ".hpp" ||
         ext == ".inl";
}

std::string NormalizePath(const fs::path& p) {
  std::string s = p.generic_string();
  return s;
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

// Collects every source file under `target` (or the file itself).
void CollectFiles(const fs::path& target, std::vector<fs::path>* files) {
  if (fs::is_regular_file(target)) {
    if (HasSourceExtension(target)) files->push_back(target);
    return;
  }
  std::vector<fs::path> found;
  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(target)) {
    if (entry.is_regular_file() && HasSourceExtension(entry.path())) {
      found.push_back(entry.path());
    }
  }
  std::sort(found.begin(), found.end());
  files->insert(files->end(), found.begin(), found.end());
}

int LintFiles(const std::vector<fs::path>& files, const std::string& format) {
  std::vector<Finding> all;
  for (const fs::path& path : files) {
    FileInput input;
    input.display_path = NormalizePath(path);
    input.norm_path = NormalizePath(fs::absolute(path));
    if (!ReadFile(path, &input.content)) {
      std::cerr << "pafeat-lint: cannot read " << path << "\n";
      return 2;
    }
    // Companion header: container members declared in foo.h are tracked when
    // linting foo.cc.
    const std::string ext = path.extension().string();
    if (ext == ".cc" || ext == ".cpp") {
      fs::path header = path;
      header.replace_extension(".h");
      if (fs::exists(header)) ReadFile(header, &input.companion_content);
    }
    for (Finding& f : RunRules(input)) all.push_back(std::move(f));
  }
  if (format == "sarif") {
    std::cout << ToSarif("pafeat-lint", all);
    return all.empty() ? 0 : 1;
  }
  for (const Finding& f : all) {
    if (format == "machine") {
      std::cout << f.file << ":" << f.line << " " << f.rule << "\n";
    } else {
      std::cout << f.file << ":" << f.line << ": error: [" << f.rule << "] "
                << f.message << "\n";
      if (!f.hint.empty()) std::cout << "  hint: " << f.hint << "\n";
    }
  }
  if (format != "machine") {
    if (all.empty()) {
      std::cout << "pafeat-lint: " << files.size() << " files clean\n";
    } else {
      std::cout << "pafeat-lint: " << all.size() << " finding(s) across "
                << files.size() << " files\n";
    }
  }
  return all.empty() ? 0 : 1;
}

// --- self test -------------------------------------------------------------
// Each case is a source snippet with the rules it must (or must not) fire.
// Runs entirely in-memory; registered in ctest as pafeat_lint_selftest so a
// broken rule fails the suite even when the tree itself is clean.

struct SelfCase {
  const char* name;
  const char* path;  // pretend location (drives allowlists)
  const char* source;
  std::vector<std::string> expected_rules;  // sorted multiset
};

int SelfTest() {
  const std::vector<SelfCase> cases = {
      {"rand-call", "src/core/feat.cc", "int x = rand();\n", {"randomness"}},
      {"rand-in-comment-and-string", "src/core/feat.cc",
       "// rand() here is fine\nconst char* s = \"rand()\";\n", {}},
      {"member-rand-ok", "src/core/feat.cc", "double r = dist.rand();\n", {}},
      {"mt19937", "src/core/feat.cc", "std::mt19937 gen(42);\n",
       {"randomness"}},
      {"random-device", "src/rl/env.cc", "std::random_device rd;\n",
       {"randomness"}},
      {"rng-owner-exempt", "src/common/rng.cc", "int x = rand();\n", {}},
      {"raw-thread", "src/core/feat.cc",
       "std::thread t([] {});\nt.join();\n", {"raw-thread"}},
      {"thread-id-ok", "src/core/feat.cc",
       "std::thread::id id = std::this_thread::get_id();\n", {}},
      {"hardware-concurrency-ok", "src/core/feat.cc",
       "unsigned n = std::thread::hardware_concurrency();\n", {}},
      {"async", "src/core/feat.cc",
       "auto f = std::async(std::launch::async, [] {});\n", {"raw-thread"}},
      {"pool-owner-exempt", "src/common/thread_pool.cc",
       "std::thread t([] {});\n", {}},
      {"thread-pragma", "tests/foo_test.cc",
       "// lint: allow(raw-thread): stress test needs unmanaged threads\n"
       "std::thread t([] {});\n",
       {}},
      {"thread-pragma-no-reason", "tests/foo_test.cc",
       "std::thread t([] {});  // lint: allow(raw-thread)\n", {"lint-pragma"}},
      {"pragma-unknown-rule", "tests/foo_test.cc",
       "// lint: allow(no-such-rule): hm\nint x = 0;\n", {"lint-pragma"}},
      {"unordered-range-for", "src/core/feat.cc",
       "std::unordered_map<int, int> counts;\n"
       "int Sum() { int s = 0; for (const auto& kv : counts) s += kv.second;"
       " return s; }\n",
       {"unordered-iter"}},
      {"unordered-structured-binding", "src/core/feat.cc",
       "std::unordered_set<int> seen_;\n"
       "void F() { for (int v : seen_) { (void)v; } }\n",
       {"unordered-iter"}},
      {"unordered-iterator-loop", "src/core/feat.cc",
       "std::unordered_map<int, int> m_;\n"
       "void F() { for (auto it = m_.begin(); it != m_.end(); ++it) {} }\n",
       {"unordered-iter"}},
      {"unordered-find-ok", "src/core/feat.cc",
       "std::unordered_map<int, int> m_;\n"
       "bool Has(int k) { return m_.find(k) != m_.end(); }\n",
       {}},
      {"unordered-alias", "src/core/feat.cc",
       "using Cache = std::unordered_map<int, double>;\n"
       "Cache cache_;\n"
       "void F() { for (const auto& kv : cache_) { (void)kv; } }\n",
       {"unordered-iter"}},
      {"unordered-pragma", "src/core/feat.cc",
       "std::unordered_map<int, int> m_;\n"
       "void F() {\n"
       "  // lint: allow(unordered-iter): accumulation is commutative here\n"
       "  for (const auto& kv : m_) { (void)kv; }\n"
       "}\n",
       {}},
      {"vector-range-for-ok", "src/core/feat.cc",
       "std::vector<int> v_;\nvoid F() { for (int x : v_) { (void)x; } }\n",
       {}},
      {"raw-array-new", "src/ml/foo.cc", "float* p = new float[128];\n",
       {"raw-alloc"}},
      {"plain-new-ok", "src/ml/foo.cc", "auto* p = new Foo(1, 2);\n", {}},
      {"malloc", "src/ml/foo.cc",
       "void* p = malloc(64);\n", {"raw-alloc"}},
      {"make-unique-array-ok", "src/ml/foo.cc",
       "auto p = std::make_unique<float[]>(64);\n", {}},
      {"tensor-exempt", "src/tensor/matrix.cc",
       "float* p = new float[128];\n", {}},
      {"arena-exempt", "src/nn/workspace.cc", "float* p = new float[8];\n",
       {}},
      {"single-row-q", "src/core/feat.cc",
       "net.PredictInto(1, obs.data(), arena, q);\n", {"single-row-q"}},
      {"single-row-q-batched-ok", "src/core/feat.cc",
       "net.PredictBatchInto(1, obs.data(), arena, q);\n"
       "net.PredictInto(rows, obs.data(), arena, q);\n",
       {}},
      {"single-row-q-plane-exempt", "src/nn/dueling_net.cc",
       "trunk_.PredictInto(1, states, arena, features);\n", {}},
      {"single-row-q-pragma", "tests/foo_test.cc",
       "// lint: allow(single-row-q): legacy reference for the equivalence "
       "test\n"
       "net.PredictInto(1, obs.data(), arena, q);\n",
       {}},
      {"intrinsic-call-outside-kernels", "src/nn/quantized_net.cc",
       "__m256i v = _mm256_loadu_si256(p);\n",
       {"intrinsics-only-in-kernel-tus"}},
      {"intrinsic-one-finding-per-line", "src/core/feat.cc",
       "auto v = _mm512_fmadd_ps(a, b, c);\n"
       "auto w = _mm512_add_ps(v, v);\n",
       {"intrinsics-only-in-kernel-tus", "intrinsics-only-in-kernel-tus"}},
      {"intrinsic-mask-type", "src/rl/env.cc",
       "__mmask16 m = 0;\n", {"intrinsics-only-in-kernel-tus"}},
      {"intrinsic-kernel-tu-exempt", "src/tensor/kernels_avx512.cc",
       "__m512 acc = _mm512_setzero_ps();\n", {}},
      {"intrinsic-kernel-inl-exempt", "src/tensor/kernels_impl.inl",
       "__m256 acc = _mm256_setzero_ps();\n", {}},
      {"intrinsic-in-comment-ok", "src/core/feat.cc",
       "// replaced the _mm256_fmadd_ps path with the dispatch call\n"
       "int x = 0;\n",
       {}},
      {"intrinsic-lookalike-ok", "src/core/feat.cc",
       "int _map = 0; int __m = _map;\n", {}},
      {"intrinsic-pragma", "tests/foo_test.cc",
       "// lint: allow(intrinsics-only-in-kernel-tus): probing lane widths\n"
       "__m512 v = _mm512_setzero_ps();\n",
       {}},
      {"guard-ok", "src/common/rng.h",
       "#ifndef PAFEAT_COMMON_RNG_H_\n#define PAFEAT_COMMON_RNG_H_\n"
       "#endif  // PAFEAT_COMMON_RNG_H_\n",
       {}},
      {"guard-wrong-name", "src/common/rng.h",
       "#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n", {"include-guard"}},
      {"guard-missing", "src/common/rng.h", "int x;\n", {"include-guard"}},
      {"guard-not-checked-for-cc", "src/common/rng.cc", "int x;\n", {}},
      // Sharded training plane (PR 6): the collector fan-out and merge code
      // shapes the contract rules must keep covering.
      {"shard-fanout-raw-thread", "src/core/feat.cc",
       "void CollectShards() {\n"
       "  std::vector<std::thread> workers;\n"
       "  for (int s = 0; s < num_shards; ++s) workers.emplace_back([] {});\n"
       "  for (auto& t : workers) t.join();\n"
       "}\n",
       {"raw-thread"}},
      {"shard-fanout-pool-ok", "src/core/feat.cc",
       "ThreadPool::Global()->ParallelFor(num_shards, executors,\n"
       "                                 [&](int s) { CollectShard(s); });\n",
       {}},
      {"shard-rng-fork-ok", "src/core/feat.cc",
       "Rng shard_root(config_.seed);\n"
       "Rng shard_rng = shard_root.Fork(iteration_index_, shard_id);\n",
       {}},
      {"shard-seed-from-mt19937", "src/core/feat.cc",
       "std::mt19937 shard_gen(shard_id);\n", {"randomness"}},
      {"shard-merge-unordered-iter", "src/core/feat.cc",
       "std::unordered_map<int, std::vector<int>> shard_plans;\n"
       "void Merge() {\n"
       "  for (const auto& kv : shard_plans) Commit(kv.second);\n"
       "}\n",
       {"unordered-iter"}},
      {"shard-merge-ordered-ok", "src/core/feat.cc",
       "std::vector<ShardPlan> shards;\n"
       "void Merge() {\n"
       "  for (const ShardPlan& shard : shards) Commit(shard);\n"
       "}\n",
       {}},
  };

  int failures = 0;
  for (const SelfCase& c : cases) {
    FileInput input;
    input.display_path = c.path;
    input.norm_path = c.path;
    input.content = c.source;
    std::vector<std::string> got;
    for (const Finding& f : RunRules(input)) got.push_back(f.rule);
    std::sort(got.begin(), got.end());
    std::vector<std::string> want = c.expected_rules;
    std::sort(want.begin(), want.end());
    if (got != want) {
      ++failures;
      std::cout << "FAIL " << c.name << ": expected {";
      for (const std::string& r : want) std::cout << r << " ";
      std::cout << "} got {";
      for (const std::string& r : got) std::cout << r << " ";
      std::cout << "}\n";
    } else {
      std::cout << "ok   " << c.name << "\n";
    }
  }
  std::cout << (failures == 0 ? "self-test passed (" : "self-test FAILED (")
            << cases.size() - failures << "/" << cases.size() << " cases)\n";
  return failures == 0 ? 0 : 1;
}

int Run(int argc, char** argv) {
  std::string root = ".";
  std::string format = "human";
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") return SelfTest();
    if (arg == "--list-rules") {
      for (const std::string& r : KnownRules()) std::cout << r << "\n";
      return 0;
    }
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "human" && format != "machine" && format != "sarif") {
        std::cerr << "pafeat-lint: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pafeat-lint [--root DIR] "
                   "[--format=human|machine|sarif]"
                   " [--list-rules] [--self-test] [DIR_OR_FILE...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "pafeat-lint: unknown flag '" << arg << "'\n";
      return 2;
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) targets = {"src", "tests"};

  std::vector<fs::path> files;
  for (const std::string& t : targets) {
    fs::path p = fs::path(t);
    if (p.is_relative()) p = fs::path(root) / p;
    if (!fs::exists(p)) {
      std::cerr << "pafeat-lint: no such file or directory: " << p << "\n";
      return 2;
    }
    CollectFiles(p, &files);
  }
  return LintFiles(files, format);
}

}  // namespace
}  // namespace pafeat_lint

int main(int argc, char** argv) { return pafeat_lint::Run(argc, argv); }
