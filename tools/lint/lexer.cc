#include "lexer.h"

#include <cctype>
#include <cstddef>

namespace pafeat_lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-char punctuators the rules care about. Everything else can split
// into single chars without hurting any rule.
bool IsTwoCharPunct(char a, char b) {
  return (a == ':' && b == ':') || (a == '-' && b == '>');
}

// Parses "lint: allow(rule): justification" out of a comment body. Returns
// true if the comment is a lint pragma at all (even a malformed one, so the
// pragma rule can demand a justification).
bool ParsePragma(const std::string& body, Pragma* out) {
  std::size_t pos = body.find("lint:");
  if (pos == std::string::npos) return false;
  pos += 5;
  while (pos < body.size() && body[pos] == ' ') ++pos;
  if (body.compare(pos, 5, "allow") != 0) return false;
  pos += 5;
  if (pos >= body.size() || body[pos] != '(') return false;
  std::size_t close = body.find(')', ++pos);
  if (close == std::string::npos) return false;
  out->rule = body.substr(pos, close - pos);
  pos = close + 1;
  if (pos < body.size() && body[pos] == ':') ++pos;
  while (pos < body.size() && body[pos] == ' ') ++pos;
  out->justification = body.substr(pos);
  while (!out->justification.empty() && out->justification.back() == ' ') {
    out->justification.pop_back();
  }
  return true;
}

// Parses "analyze: <text>" out of a comment body. Unlike pragmas the body is
// free-form; the indexer interprets known annotation names and ignores the
// rest, so a typo'd annotation shows up as "annotation never attached"
// during analyzer bring-up instead of silently doing nothing in the lexer.
bool ParseAnnotation(const std::string& body, Annotation* out) {
  std::size_t pos = body.find("analyze:");
  if (pos == std::string::npos) return false;
  pos += 8;
  while (pos < body.size() && body[pos] == ' ') ++pos;
  out->text = body.substr(pos);
  while (!out->text.empty() && out->text.back() == ' ') {
    out->text.pop_back();
  }
  return !out->text.empty();
}

class Lexer {
 public:
  explicit Lexer(const std::string& content) : src_(content) {}

  LexResult Run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        line_has_token_ = false;
        ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
                 c == '\f') {
        ++pos_;
      } else if (c == '/' && Peek(1) == '/') {
        LineComment();
      } else if (c == '/' && Peek(1) == '*') {
        BlockComment();
      } else if (c == '#' && !line_has_token_) {
        PpDirective();
      } else if (c == '"') {
        StringLiteral();
      } else if (c == '\'') {
        CharLiteral();
      } else if (c == 'R' && Peek(1) == '"') {
        RawString();
      } else if (IsIdentStart(c)) {
        Identifier();
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        Number();
      } else {
        Punct();
      }
    }
    return std::move(result_);
  }

 private:
  char Peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Emit(TokKind kind, std::string text, int line) {
    result_.tokens.push_back(Token{kind, std::move(text), line});
    line_has_token_ = true;
  }

  void LineComment() {
    const int line = line_;
    const bool standalone = !line_has_token_;
    const std::size_t start = pos_ + 2;
    std::size_t end = src_.find('\n', pos_);
    // Phase-2 line splicing happens before comments are recognized: a
    // backslash immediately before the newline drags the next physical line
    // into the comment. Miss this and rules fire on "code" that the
    // compiler never sees.
    while (end != std::string::npos) {
      std::size_t back = end;
      if (back > start && src_[back - 1] == '\r') --back;
      if (back > start && src_[back - 1] == '\\') {
        ++line_;
        end = src_.find('\n', end + 1);
      } else {
        break;
      }
    }
    if (end == std::string::npos) end = src_.size();
    const std::string body = src_.substr(start, end - start);
    Pragma pragma;
    if (ParsePragma(body, &pragma)) {
      pragma.line = line;
      pragma.standalone = standalone;
      result_.pragmas.push_back(pragma);
    }
    Annotation annotation;
    if (ParseAnnotation(body, &annotation)) {
      annotation.line = line;
      annotation.standalone = standalone;
      result_.annotations.push_back(annotation);
    }
    pos_ = end;  // the '\n' is handled by the main loop
  }

  void BlockComment() {
    pos_ += 2;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && Peek(1) == '/') {
        pos_ += 2;
        return;
      }
      if (src_[pos_] == '\n') {
        ++line_;
        line_has_token_ = false;
      }
      ++pos_;
    }
  }

  // Consumes the whole directive (joining backslash continuations) into one
  // token. Trailing // comments on the directive line are stripped.
  void PpDirective() {
    const int line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        if (!text.empty() && text.back() == '\\') {
          text.pop_back();
          ++line_;
          ++pos_;
          continue;
        }
        break;
      }
      if (c == '/' && Peek(1) == '/') {
        LineComment();
        break;
      }
      if (c == '/' && Peek(1) == '*') {
        BlockComment();
        continue;
      }
      text.push_back(c);
      ++pos_;
    }
    Emit(TokKind::kPpDirective, std::move(text), line);
  }

  void StringLiteral() {
    const int line = line_;
    std::string text;
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text.push_back(src_[pos_]);
        text.push_back(src_[pos_ + 1]);
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') ++line_;  // unterminated; keep line counts sane
      text.push_back(src_[pos_]);
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;  // closing quote
    Emit(TokKind::kString, std::move(text), line);
  }

  void CharLiteral() {
    const int line = line_;
    std::string text;
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text.push_back(src_[pos_]);
        text.push_back(src_[pos_ + 1]);
        pos_ += 2;
        continue;
      }
      text.push_back(src_[pos_]);
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;
    Emit(TokKind::kCharLiteral, std::move(text), line);
  }

  void RawString() {
    const int line = line_;
    std::size_t p = pos_ + 2;  // past R"
    std::string delim;
    while (p < src_.size() && src_[p] != '(') delim.push_back(src_[p++]);
    const std::string closer = ")" + delim + "\"";
    std::size_t end = src_.find(closer, p);
    if (end == std::string::npos) end = src_.size();
    std::string text = src_.substr(p + 1, end - p - 1);
    for (char c : text) {
      if (c == '\n') ++line_;
    }
    pos_ = end == src_.size() ? end : end + closer.size();
    Emit(TokKind::kString, std::move(text), line);
  }

  void Identifier() {
    const int line = line_;
    std::size_t start = pos_;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) ++pos_;
    Emit(TokKind::kIdentifier, src_.substr(start, pos_ - start), line);
  }

  // pp-number: digits plus '.', exponent signs, digit separators, suffixes.
  void Number() {
    const int line = line_;
    std::size_t start = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        ++pos_;
      } else if ((c == '+' || c == '-') && pos_ > start &&
                 (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E' ||
                  src_[pos_ - 1] == 'p' || src_[pos_ - 1] == 'P')) {
        ++pos_;
      } else {
        break;
      }
    }
    Emit(TokKind::kNumber, src_.substr(start, pos_ - start), line);
  }

  void Punct() {
    const int line = line_;
    if (pos_ + 1 < src_.size() && IsTwoCharPunct(src_[pos_], src_[pos_ + 1])) {
      Emit(TokKind::kPunct, src_.substr(pos_, 2), line);
      pos_ += 2;
      return;
    }
    Emit(TokKind::kPunct, std::string(1, src_[pos_]), line);
    ++pos_;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool line_has_token_ = false;
  LexResult result_;
};

}  // namespace

LexResult Lex(const std::string& path, const std::string& content) {
  (void)path;
  return Lexer(content).Run();
}

}  // namespace pafeat_lint
