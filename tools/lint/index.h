#ifndef PAFEAT_TOOLS_LINT_INDEX_H_
#define PAFEAT_TOOLS_LINT_INDEX_H_

#include <map>
#include <string>
#include <vector>

#include "lexer.h"

namespace pafeat_lint {

// Cross-TU declaration/definition index and call graph for pafeat-analyze.
//
// This is not a C++ parser. It is a scope-tracking pass over the shared
// lexer's token stream that recovers exactly the structure the semantic
// rules need: which functions/methods are defined where, what each body
// calls, which lambdas are handed to `ParallelFor`/`Submit` (parallel
// roots), where root-`Rng` members are touched, where allocations happen,
// and which statement ranges hold a `ReplayBuffer::ReadGuard`. Calls are
// linked by name (qualified when the source spells a qualifier), which
// over-approximates edges — the right direction for reachability rules:
// an extra edge can cost a justified pragma, a missing one would silence
// a real escape. Known approximations are documented in DESIGN.md
// "Semantic analysis pass".

// A memory-allocating construct inside a function body.
struct AllocSite {
  int line = 0;
  std::string what;  // "new[]", "malloc()", ".push_back()", ...
};

// A use of a root-annotated `Rng` member (`rng_` of a class whose member
// declaration carries `// analyze: root-rng`).
struct RngTouch {
  int line = 0;
  std::string member;  // the member name, e.g. "rng_"
};

// One function/method/lambda definition. Lambdas defined inside a body are
// separate defs linked from their enclosing function (a conservative
// "defined implies may run" edge); lambdas that appear syntactically inside
// a `ParallelFor(...)` / `Submit(...)` argument list are additionally
// marked as parallel-execution roots.
struct FunctionDef {
  std::string name;        // last path component ("ActBatch", "lambda")
  std::string class_name;  // enclosing class or explicit qualifier, "" free
  std::string display;     // "DqnAgent::ActBatch" / "Feat::RunIteration
                           // lambda" — for messages
  std::string file;        // display path of the defining TU
  int line = 0;            // line of the name (lambdas: the '[')
  bool is_lambda = false;
  bool parallel_body = false;  // lambda captured into ParallelFor/Submit
  std::vector<std::string> annotations;  // attached `// analyze:` texts
  std::vector<AllocSite> allocs;
  std::vector<RngTouch> rng_touches;
};

// One call site: `callee(...)` inside the body of `caller`.
struct CallSite {
  int caller = -1;        // index into Program::defs
  std::string callee;     // last name component
  std::string qualifier;  // explicit "A::callee" qualifier, else ""
  bool member = false;    // obj.callee(...) / obj->callee(...)
  int line = 0;
  bool in_guard_region = false;  // statically inside a ReadGuard window
};

// Per-file lex byproducts the rules need when reporting/suppressing.
struct FilePragmas {
  std::vector<Pragma> pragmas;
  std::vector<Annotation> annotations;  // kept for unattached-annotation
                                        // diagnostics
};

struct Program {
  std::vector<FunctionDef> defs;
  std::vector<CallSite> calls;
  // Classes whose `Rng` member declaration is annotated `root-rng`,
  // mapped to the annotated member name (usually "rng_").
  std::map<std::string, std::string> root_rng_classes;
  std::map<std::string, FilePragmas> file_pragmas;  // by display path

  // Name -> def indices (last component). Qualified lookups filter by
  // class_name when the qualifier names a class that defines the name.
  std::multimap<std::string, int> defs_by_name;

  // Resolves a call to candidate definition indices (possibly empty:
  // std:: / libc / macro names have no definition in the program).
  std::vector<int> Resolve(const CallSite& call) const;
};

// Indexes one file's token stream into `program`. `display_path` feeds
// findings; `norm_path` (forward slashes) feeds path-based exemptions.
void IndexFile(const std::string& display_path, const std::string& norm_path,
               const LexResult& lexed, Program* program);

// Finishes the program after every file was indexed (builds defs_by_name,
// attaches class annotations).
void FinalizeProgram(Program* program);

}  // namespace pafeat_lint

#endif  // PAFEAT_TOOLS_LINT_INDEX_H_
