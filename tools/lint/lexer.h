#ifndef PAFEAT_TOOLS_LINT_LEXER_H_
#define PAFEAT_TOOLS_LINT_LEXER_H_

#include <map>
#include <string>
#include <vector>

namespace pafeat_lint {

// A deliberately small C++ tokenizer: enough lexical fidelity that the rule
// passes never fire inside comments, string literals, or raw strings — the
// failure mode that makes grep-based lint rules unadoptable. It does not
// parse; rules pattern-match over the token stream.
enum class TokKind {
  kIdentifier,   // identifiers and keywords (rules treat keywords by text)
  kNumber,       // numeric literal (pp-number: good enough for matching)
  kString,       // "..." or R"(...)" (text excludes quotes/delimiters)
  kCharLiteral,  // '...'
  kPunct,        // operators/punctuation; "::" "->" are single tokens
  kPpDirective,  // whole preprocessor line(s), continuations joined
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

// A `// lint: allow(rule): justification` comment.
struct Pragma {
  int line = 0;          // line the comment sits on
  bool standalone = false;  // comment is the only thing on its line
  std::string rule;
  std::string justification;
};

// An `// analyze: <text>` comment — the semantic pass's annotation channel
// (e.g. `// analyze: root-rng` on a member declaration, or
// `// analyze: hot-path-root` above a function definition). The lexer only
// records them; tools/lint/index.cc decides what they attach to.
struct Annotation {
  int line = 0;             // line the comment sits on
  bool standalone = false;  // comment is the only thing on its line
  std::string text;         // body after "analyze:", trimmed
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Pragma> pragmas;
  std::vector<Annotation> annotations;
};

// Tokenizes `content` (the text of `path`, used only for diagnostics).
// Never fails: unrecognized bytes become single-char punct tokens.
LexResult Lex(const std::string& path, const std::string& content);

}  // namespace pafeat_lint

#endif  // PAFEAT_TOOLS_LINT_LEXER_H_
