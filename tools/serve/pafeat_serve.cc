// pafeat-serve: load a checkpoint into a SelectionServer and replay task
// representations against it at a configurable client concurrency, printing
// the serving-plane counters (batch-width histogram, latency breakdown,
// swap/reject counts) as a table. The operational twin of the library's
// SelectionServer API — handy for eyeballing coalescing behavior on a real
// checkpoint, and for demoing the serving plane without one (--demo).
//
// Representation file format (--reprs): one task per line, whitespace-
// separated floats, every line the same length (the checkpoint's feature
// count). Lines are replayed round-robin across clients.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/checkpoint.h"
#include "memory/budget.h"
#include "nn/dueling_net.h"
#include "rl/fs_env.h"
#include "serve/selection_server.h"

namespace pafeat {
namespace {

AgentCheckpoint MakeDemoCheckpoint(int m, uint64_t seed) {
  AgentCheckpoint checkpoint;
  checkpoint.net_config.input_dim = 2 * m + 3;
  checkpoint.net_config.num_actions = kNumActions;
  checkpoint.net_config.trunk_hidden = {64, 64};
  checkpoint.max_feature_ratio = 0.5;
  Rng rng(seed);
  DuelingNet net(checkpoint.net_config, &rng);
  checkpoint.parameters = net.SerializeParams();
  return checkpoint;
}

bool LoadRepresentations(const std::string& path, int expected_m,
                         std::vector<std::vector<float>>* reprs) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "pafeat-serve: cannot open reprs file " << path << "\n";
    return false;
  }
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream fields(line);
    std::vector<float> repr;
    float value = 0.0f;
    while (fields >> value) repr.push_back(value);
    if (repr.empty()) continue;  // blank line
    if (static_cast<int>(repr.size()) != expected_m) {
      std::cerr << "pafeat-serve: " << path << ":" << line_number << " has "
                << repr.size() << " values; the checkpoint serves "
                << expected_m << " features\n";
      return false;
    }
    reprs->push_back(std::move(repr));
  }
  if (reprs->empty()) {
    std::cerr << "pafeat-serve: " << path << " holds no representations\n";
    return false;
  }
  return true;
}

double Percentile(std::vector<double> sorted_or_not, double p) {
  if (sorted_or_not.empty()) return 0.0;
  std::sort(sorted_or_not.begin(), sorted_or_not.end());
  const double rank = p * (sorted_or_not.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_or_not.size() - 1);
  const double frac = rank - lo;
  return sorted_or_not[lo] * (1.0 - frac) + sorted_or_not[hi] * frac;
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

int Main(int argc, char** argv) {
  std::string checkpoint_path;
  std::string reprs_path;
  bool demo = false;
  int demo_features = 64;
  int demo_tasks = 32;
  int concurrency = 8;
  int requests_per_client = 50;
  bool quantized = false;
  int max_batch = 64;
  int max_queue = 256;
  int max_wait_us = 200;
  int max_cache_mb = -1;
  int replay_budget_mb = -1;

  FlagSet flags;
  flags.AddString("checkpoint", &checkpoint_path,
                  "trained agent checkpoint to serve");
  flags.AddString("reprs", &reprs_path,
                  "task representations to replay (one per line)");
  flags.AddBool("demo", &demo,
                "serve a freshly initialized demo network instead of a "
                "checkpoint (random representations unless --reprs)");
  flags.AddInt("demo_features", &demo_features,
               "feature count of the --demo network");
  flags.AddInt("demo_tasks", &demo_tasks,
               "random representations to generate under --demo");
  flags.AddInt("concurrency", &concurrency, "concurrent client threads");
  flags.AddInt("requests_per_client", &requests_per_client,
               "Select calls each client issues");
  flags.AddBool("quantized", &quantized, "serve the int8 quantized tier");
  flags.AddInt("max_batch", &max_batch, "widest coalesced forward pass");
  flags.AddInt("max_queue", &max_queue,
               "admission bound on in-flight requests");
  flags.AddInt("max_wait_us", &max_wait_us,
               "how long a lone arrival waits for peers to coalesce");
  flags.AddInt("max_cache_mb", &max_cache_mb,
               "process-wide reward-cache budget in MB for any in-process "
               "training/evaluation (0 = unlimited, -1 = default chain)");
  flags.AddInt("replay_budget_mb", &replay_budget_mb,
               "process-wide replay-buffer budget in MB for any in-process "
               "training (0 = unlimited, -1 = default chain)");
  if (!flags.Parse(argc, argv)) return 1;
  // Budgets land as process defaults so every component built later in this
  // process — including training colocated with serving — inherits them
  // through the memory/budget.h resolution chain.
  if (max_cache_mb >= 0) {
    SetProcessCacheBudgetBytes(static_cast<long long>(max_cache_mb) * 1024 *
                               1024);
  }
  if (replay_budget_mb >= 0) {
    SetProcessReplayBudgetBytes(static_cast<long long>(replay_budget_mb) *
                                1024 * 1024);
  }
  if (checkpoint_path.empty() && !demo) {
    std::cerr << "pafeat-serve: pass --checkpoint=<path> or --demo\n\n"
              << flags.Usage();
    return 1;
  }
  if (concurrency < 1 || requests_per_client < 1) {
    std::cerr << "pafeat-serve: --concurrency and --requests_per_client "
                 "must be positive\n";
    return 1;
  }

  AgentCheckpoint checkpoint;
  if (demo && checkpoint_path.empty()) {
    checkpoint = MakeDemoCheckpoint(demo_features, 0x5e57e);
  } else {
    std::string error;
    const std::optional<AgentCheckpoint> loaded =
        LoadCheckpoint(checkpoint_path, &error);
    if (!loaded.has_value()) {
      std::cerr << "pafeat-serve: " << error << "\n";
      return 1;
    }
    checkpoint = *loaded;
  }
  const int m = (checkpoint.net_config.input_dim - 3) / 2;

  std::vector<std::vector<float>> reprs;
  if (!reprs_path.empty()) {
    if (!LoadRepresentations(reprs_path, m, &reprs)) return 1;
  } else if (demo) {
    Rng rng(0xd3a0);
    for (int t = 0; t < demo_tasks; ++t) {
      std::vector<float> repr(m);
      for (float& value : repr) {
        value = static_cast<float>(rng.Uniform(-1.0, 1.0));
      }
      reprs.push_back(std::move(repr));
    }
  } else {
    std::cerr << "pafeat-serve: pass --reprs=<file> (or --demo for random "
                 "representations)\n";
    return 1;
  }

  ServerConfig config;
  config.serve.quantized = quantized;
  config.max_batch = max_batch;
  config.max_queue = max_queue;
  config.max_wait_us = max_wait_us;
  SelectionServer server(checkpoint, config);

  std::cout << "pafeat-serve: " << (demo ? "demo network" : checkpoint_path)
            << " | m=" << m << " tier=" << (quantized ? "int8" : "fp32")
            << " clients=" << concurrency << " x " << requests_per_client
            << " requests | max_batch=" << max_batch
            << " max_queue=" << max_queue << " max_wait_us=" << max_wait_us
            << "\n";

  std::mutex latency_mutex;
  std::vector<double> total_us;
  std::vector<double> queue_us;
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> selected_features{0};
  WallTimer wall;
  std::vector<std::thread> clients;
  clients.reserve(concurrency);
  for (int c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      std::vector<double> my_total, my_queue;
      my_total.reserve(requests_per_client);
      my_queue.reserve(requests_per_client);
      for (int i = 0; i < requests_per_client; ++i) {
        const std::size_t idx =
            (static_cast<std::size_t>(c) * requests_per_client + i) %
            reprs.size();
        const SelectionResponse response = server.Select(reprs[idx]);
        if (response.status != AdmissionStatus::kOk) {
          rejected.fetch_add(1);
          continue;
        }
        selected_features.fetch_add(MaskCount(response.mask));
        my_total.push_back(response.stats.total_us);
        my_queue.push_back(response.stats.queue_us);
      }
      std::lock_guard<std::mutex> lock(latency_mutex);
      total_us.insert(total_us.end(), my_total.begin(), my_total.end());
      queue_us.insert(queue_us.end(), my_queue.begin(), my_queue.end());
    });
  }
  for (std::thread& client : clients) client.join();
  const double elapsed_s = wall.ElapsedSeconds();
  server.Shutdown();

  const ServerStats stats = server.Stats();
  const double completed = static_cast<double>(stats.completed);
  TablePrinter summary({"metric", "value"});
  summary.AddRow({"completed", std::to_string(stats.completed)});
  summary.AddRow({"rejected (client view)", std::to_string(rejected.load())});
  summary.AddRow({"tasks/sec", FormatDouble(completed / elapsed_s, 1)});
  summary.AddRow({"mean batch width", FormatDouble(stats.MeanBatchWidth(), 2)});
  summary.AddRow({"coalesced steps", std::to_string(stats.steps)});
  summary.AddRow({"p50 latency (us)", FormatDouble(Percentile(total_us, 0.50), 1)});
  summary.AddRow({"p99 latency (us)", FormatDouble(Percentile(total_us, 0.99), 1)});
  summary.AddRow({"p50 queue wait (us)", FormatDouble(Percentile(queue_us, 0.50), 1)});
  summary.AddRow({"mean compute (us)",
                  FormatDouble(completed == 0.0
                                   ? 0.0
                                   : stats.compute_us_sum / completed,
                               1)});
  summary.AddRow({"queue-full rejects", std::to_string(stats.rejected_queue_full)});
  summary.AddRow({"bad-request rejects", std::to_string(stats.rejected_bad_request)});
  summary.AddRow({"checkpoint swaps", std::to_string(stats.swaps_applied)});
  summary.AddRow({"net version", std::to_string(stats.net_version)});
  summary.AddRow({"mean features/task",
                  FormatDouble(completed == 0.0
                                   ? 0.0
                                   : static_cast<double>(
                                         selected_features.load()) /
                                         completed,
                               2)});
  std::cout << summary.ToText() << "\n";

  // The batch-width histogram is the coalescing story in one table: under
  // concurrency the mass should sit well above width 1.
  TablePrinter histogram({"batch width", "steps", "share"});
  for (int w = 1; w < static_cast<int>(stats.batch_width_hist.size()); ++w) {
    if (stats.batch_width_hist[w] == 0) continue;
    histogram.AddRow(
        {std::to_string(w), std::to_string(stats.batch_width_hist[w]),
         FormatDouble(100.0 * static_cast<double>(stats.batch_width_hist[w]) /
                          static_cast<double>(stats.steps),
                      1) +
             "%"});
  }
  std::cout << histogram.ToText();
  return 0;
}

}  // namespace
}  // namespace pafeat

int main(int argc, char** argv) { return pafeat::Main(argc, argv); }
