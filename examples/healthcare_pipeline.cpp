// Healthcare scenario (the paper's Fig 1): a hospital's structured data
// supports many predictive tasks over the same patient features. Historical
// tasks (in-hospital death, length of stay, ...) are seen tasks; a new
// readmission-prediction task arrives later and needs features *now*.
//
// The example trains PA-FEAT on the seen tasks, then contrasts three ways
// of serving the new task:
//   1. PA-FEAT zero-shot transfer (milliseconds),
//   2. K-Best computed from scratch (fast but redundancy-blind),
//   3. PA-FEAT + further training (§IV-D) when a time budget allows.
//
//   ./build/examples/example_healthcare_pipeline [--iterations 400]

#include <cstdio>

#include "baselines/kbest.h"
#include "common/flags.h"
#include "core/defaults.h"
#include "core/experiment.h"
#include "core/pafeat.h"
#include "data/synthetic.h"

using namespace pafeat;

int main(int argc, char** argv) {
  int iterations = 500;
  int further_iterations = 150;
  double mfr = 0.3;  // ICU dashboards want few, interpretable features
  FlagSet flags;
  flags.AddInt("iterations", &iterations, "offline training iterations");
  flags.AddInt("further_iterations", &further_iterations,
               "optional further-training budget");
  flags.AddDouble("mfr", &mfr, "max feature ratio");
  if (!flags.Parse(argc, argv)) return 1;

  // A PhysioNet-2012-shaped dataset, scaled down so the example runs in
  // seconds: 41 clinical measurements, 6 historical tasks, 2 future ones.
  SyntheticSpec spec = *PaperSpecByName("Physionet2012");
  spec.num_instances = 2000;
  spec.num_seen_tasks = 6;
  spec.num_unseen_tasks = 2;
  const SyntheticDataset hospital = GenerateSynthetic(spec);
  std::printf(
      "hospital data: %d ICU stays, %d clinical features, %d historical "
      "tasks\n",
      hospital.table.num_rows(), hospital.table.num_features(),
      hospital.num_seen_tasks());

  FsProblem problem(hospital.table, DefaultProblemConfig(), 2012);

  // Offline phase: generalize feature-selection knowledge from the
  // historical tasks (runs before any new task exists).
  PaFeatConfig config;
  config.feat = DefaultFeatOptions(iterations, 41).feat;
  config.feat.max_feature_ratio = mfr;
  PaFeat pafeat(&problem, hospital.SeenTaskIndices(), config);
  const double iter_seconds = pafeat.Train(iterations);
  std::printf("offline training: %d iterations, %.1f ms each\n\n", iterations,
              iter_seconds * 1e3);

  // A new analytics request arrives: predict 30-day readmission.
  const int readmission = hospital.UnseenTaskIndices()[0];
  std::printf("new task arrives: '%s'\n",
              hospital.table.label_names()[readmission].c_str());

  double exec_seconds = 0.0;
  const FeatureMask transferred =
      pafeat.SelectFeatures(readmission, &exec_seconds);
  const DownstreamScore transferred_score =
      EvaluateSubsetDownstream(&problem, readmission, transferred, 99);
  std::printf(
      "  PA-FEAT transfer: %d features in %.2f ms -> F1 %.4f, AUC %.4f\n",
      MaskCount(transferred), exec_seconds * 1e3, transferred_score.f1,
      transferred_score.auc);

  KBestSelector kbest;
  kbest.Prepare(&problem, hospital.SeenTaskIndices(), mfr);
  double kbest_seconds = 0.0;
  const FeatureMask kbest_mask =
      kbest.SelectForUnseen(&problem, readmission, &kbest_seconds);
  const DownstreamScore kbest_score =
      EvaluateSubsetDownstream(&problem, readmission, kbest_mask, 99);
  std::printf(
      "  K-Best baseline:  %d features in %.2f ms -> F1 %.4f, AUC %.4f\n",
      MaskCount(kbest_mask), kbest_seconds * 1e3, kbest_score.f1,
      kbest_score.auc);

  const DownstreamScore all_score = EvaluateSubsetDownstream(
      &problem, readmission, FeatureMask(problem.num_features(), 1), 99);
  std::printf("  all %d features:                      -> F1 %.4f, AUC %.4f\n",
              problem.num_features(), all_score.f1, all_score.auc);

  // The analyst has a few spare seconds: further-train on the new task.
  std::printf("\nfurther training on the readmission task (%d iterations):\n",
              further_iterations);
  const FeatureMask refined = pafeat.FurtherTrain(
      readmission, further_iterations, further_iterations / 3,
      [&](int iteration, const FeatureMask& mask) {
        const DownstreamScore score =
            EvaluateSubsetDownstream(&problem, readmission, mask, 99);
        std::printf("  after %3d iterations: %d features, F1 %.4f, AUC %.4f\n",
                    iteration, MaskCount(mask), score.f1, score.auc);
      });
  (void)refined;
  return 0;
}
