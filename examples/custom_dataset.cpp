// Bringing your own structured data: builds a Table programmatically, round-
// trips it through the CSV format, wraps it in an FsProblem and runs the
// whole fast-feature-selection workflow on it. This is the template to adapt
// when plugging real relational data into the library.
//
//   ./build/examples/example_custom_dataset

#include <cstdio>

#include "common/rng.h"
#include "core/defaults.h"
#include "core/experiment.h"
#include "core/pafeat.h"
#include "data/csv.h"
#include "data/table.h"

using namespace pafeat;

namespace {

// A toy "sensor fleet" relation: 8 sensor channels, three maintenance
// prediction tasks that each depend on a different pair of channels.
Table BuildSensorTable(int rows, uint64_t seed) {
  Rng rng(seed);
  Matrix features(rows, 8);
  Matrix labels(rows, 3);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < 8; ++c) {
      features.At(r, c) = static_cast<float>(rng.Normal());
    }
    // Channel 7 mirrors channel 0 (a redundant backup sensor).
    features.At(r, 7) = features.At(r, 0) +
                        0.2f * static_cast<float>(rng.Normal());
    const float overheat = features.At(r, 0) + features.At(r, 1);
    const float vibration = features.At(r, 2) - features.At(r, 3);
    const float drift = features.At(r, 4) + 0.5f * features.At(r, 1);
    labels.At(r, 0) = overheat > 0.5f ? 1.0f : 0.0f;
    labels.At(r, 1) = vibration > 0.3f ? 1.0f : 0.0f;
    labels.At(r, 2) = drift > 0.4f ? 1.0f : 0.0f;
  }
  return Table(std::move(features), std::move(labels),
               {"temp", "load", "vib_x", "vib_y", "volt", "rpm", "hum",
                "temp_backup"},
               {"overheat", "bearing_wear", "calib_drift"});
}

}  // namespace

int main() {
  // 1. Build the relation and persist it as CSV (the interchange format).
  const Table sensors = BuildSensorTable(1200, 99);
  const std::string path = "/tmp/pafeat_sensors.csv";
  if (!WriteTableCsv(sensors, path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s (%d rows)\n", path.c_str(), sensors.num_rows());

  // 2. Load it back — this is where your own CSV would enter.
  const auto loaded = ReadTableCsv(path);
  if (!loaded.has_value()) {
    std::fprintf(stderr, "cannot parse %s\n", path.c_str());
    return 1;
  }
  std::printf("loaded %d rows, %d features (%s...), %d tasks\n",
              loaded->num_rows(), loaded->num_features(),
              loaded->feature_names()[0].c_str(), loaded->num_labels());

  // 3. Treat 'overheat' and 'bearing_wear' as historical tasks and
  //    'calib_drift' as the future one.
  FsProblem problem(*loaded, DefaultProblemConfig(), 100);
  PaFeatConfig config;
  config.feat = DefaultFeatOptions(300, 101).feat;
  config.feat.max_feature_ratio = 0.5;
  PaFeat pafeat(&problem, {0, 1}, config);
  pafeat.Train(300);

  double exec_seconds = 0.0;
  const FeatureMask mask = pafeat.SelectFeatures(2, &exec_seconds);
  std::printf("\nselected channels for 'calib_drift' (%.2f ms):",
              exec_seconds * 1e3);
  for (int f : MaskToIndices(mask)) {
    std::printf(" %s", loaded->feature_names()[f].c_str());
  }
  const DownstreamScore score = EvaluateSubsetDownstream(&problem, 2, mask, 7);
  const DownstreamScore all = EvaluateSubsetDownstream(
      &problem, 2, FeatureMask(problem.num_features(), 1), 7);
  std::printf("\nF1 %.4f (all channels %.4f), AUC %.4f (all channels %.4f)\n",
              score.f1, all.f1, score.auc, all.auc);
  return 0;
}
