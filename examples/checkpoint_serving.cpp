// Offline training / online serving split: train PA-FEAT once, persist the
// agent to disk, then serve unseen tasks from the checkpoint without any
// training state (no classifiers, buffers or E-Trees) — the deployment mode
// a production analytics system would use.
//
//   ./build/examples/example_checkpoint_serving

#include <cstdio>

#include "common/timer.h"
#include "core/checkpoint.h"
#include "core/defaults.h"
#include "core/experiment.h"
#include "core/pafeat.h"
#include "data/stats.h"
#include "data/synthetic.h"

using namespace pafeat;

int main() {
  SyntheticSpec spec;
  spec.name = "serving";
  spec.num_instances = 700;
  spec.num_features = 20;
  spec.num_seen_tasks = 4;
  spec.num_unseen_tasks = 2;
  spec.seed = 4242;
  const SyntheticDataset dataset = GenerateSynthetic(spec);
  FsProblem problem(dataset.table, DefaultProblemConfig(), 4243);

  // --- offline: train and checkpoint -------------------------------------
  PaFeatConfig config;
  config.feat = DefaultFeatOptions(400, 4244).feat;
  config.feat.max_feature_ratio = 0.5;
  PaFeat pafeat(&problem, dataset.SeenTaskIndices(), config);
  pafeat.Train(400);

  const std::string path = "/tmp/pafeat_serving.ckpt";
  const AgentCheckpoint checkpoint = MakeCheckpoint(pafeat.feat());
  if (!SaveCheckpoint(checkpoint, path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("trained and saved agent: %zu parameters -> %s\n",
              checkpoint.parameters.size(), path.c_str());

  // --- online: an independent serving path -------------------------------
  // (in production this would be another process; here we just reload)
  const auto server = CheckpointedSelector::FromFile(path);
  if (!server.has_value()) {
    std::fprintf(stderr, "cannot load %s\n", path.c_str());
    return 1;
  }
  std::printf("serving selector restored: %d features, mfr %.2f\n\n",
              server->num_features(), server->max_feature_ratio());

  for (int unseen : dataset.UnseenTaskIndices()) {
    // The serving side only needs the new task's representation, which it
    // can compute from the (label, features) stream with one Pearson pass.
    const std::vector<float> repr = problem.ComputeTaskRepresentation(unseen);
    WallTimer timer;
    const FeatureMask mask = server->SelectForRepresentation(repr);
    const double select_ms = timer.ElapsedMillis();

    const DownstreamScore score =
        EvaluateSubsetDownstream(&problem, unseen, mask, 4245);
    const FeatureMask live = pafeat.SelectFeatures(unseen);
    std::printf(
        "unseen task %d: %d features in %.3f ms | F1 %.4f AUC %.4f | "
        "matches live agent: %s\n",
        unseen, MaskCount(mask), select_ms, score.f1, score.auc,
        mask == live ? "yes" : "NO");
  }
  return 0;
}
