// Web-page categorization scenario (the paper's Business/Entertainment
// datasets): hundreds of bag-of-words features, each task predicts one
// subcategory. Demonstrates how the max feature ratio (mfr) trades subset
// size against downstream quality — the sweep behind Figs 5/6 — on one
// unseen category, and how the selected budget saturates.
//
//   ./build/examples/example_webpage_categorization [--features 200]

#include <cstdio>

#include "common/flags.h"
#include "core/defaults.h"
#include "core/experiment.h"
#include "core/pafeat.h"
#include "data/synthetic.h"

using namespace pafeat;

int main(int argc, char** argv) {
  int features = 120;
  int instances = 1500;
  int iterations = 400;
  FlagSet flags;
  flags.AddInt("features", &features, "vocabulary size (feature count)");
  flags.AddInt("instances", &instances, "number of pages");
  flags.AddInt("iterations", &iterations, "training iterations per mfr");
  if (!flags.Parse(argc, argv)) return 1;

  // A Business-like catalogue, scaled to run in seconds.
  SyntheticSpec spec;
  spec.name = "WebPages";
  spec.num_instances = instances;
  spec.num_features = features;
  spec.num_seen_tasks = 5;   // categories with historical models
  spec.num_unseen_tasks = 2; // newly introduced categories
  spec.seed = 520;
  const SyntheticDataset pages = GenerateSynthetic(spec);
  std::printf("web pages: %d pages x %d word features, %d+%d categories\n\n",
              pages.table.num_rows(), pages.table.num_features(),
              pages.num_seen_tasks(), pages.num_unseen_tasks());

  FsProblem problem(pages.table, DefaultProblemConfig(), 521);
  const int new_category = pages.UnseenTaskIndices()[0];

  std::printf("%-6s %-10s %-12s %-8s %-8s\n", "mfr", "#selected", "exec (ms)",
              "F1", "AUC");
  for (double mfr : {0.1, 0.2, 0.4, 0.6, 0.8}) {
    // Each budget trains its own policy: the agent learns to live within
    // the mfr it will be deployed with (Algorithm 1 line 10).
    PaFeatConfig config;
    config.feat = DefaultFeatOptions(iterations, 522).feat;
    config.feat.max_feature_ratio = mfr;
    PaFeat pafeat(&problem, pages.SeenTaskIndices(), config);
    pafeat.Train(iterations);

    double exec_seconds = 0.0;
    const FeatureMask mask =
        pafeat.SelectFeatures(new_category, &exec_seconds);
    const DownstreamScore score =
        EvaluateSubsetDownstream(&problem, new_category, mask, 523);
    std::printf("%-6.1f %-10d %-12.2f %-8.4f %-8.4f\n", mfr, MaskCount(mask),
                exec_seconds * 1e3, score.f1, score.auc);
  }

  const DownstreamScore all_score = EvaluateSubsetDownstream(
      &problem, new_category, FeatureMask(problem.num_features(), 1), 523);
  std::printf("%-6s %-10d %-12s %-8.4f %-8.4f  (no selection)\n", "1.0*",
              problem.num_features(), "-", all_score.f1, all_score.auc);
  return 0;
}
