// Quickstart: train PA-FEAT on a small synthetic multi-task dataset, then
// perform fast feature selection for an unseen task and compare the selected
// subset's downstream quality against using all features.
//
//   ./build/examples/example_quickstart [--iterations 150]

#include <cstdio>

#include "common/flags.h"
#include "core/defaults.h"
#include "core/experiment.h"
#include "core/pafeat.h"
#include "data/synthetic.h"

using namespace pafeat;

int main(int argc, char** argv) {
  int iterations = 400;
  double mfr = 0.5;
  int seed = 7;
  FlagSet flags;
  flags.AddInt("iterations", &iterations, "training iterations on seen tasks");
  flags.AddDouble("mfr", &mfr, "max feature ratio");
  flags.AddInt("seed", &seed, "random seed");
  if (!flags.Parse(argc, argv)) return 1;

  // 1. A structured-data table with several prediction tasks over one
  //    shared feature space (4 historical/seen tasks, 2 future/unseen).
  SyntheticSpec spec;
  spec.name = "quickstart";
  spec.num_instances = 800;
  spec.num_features = 24;
  spec.num_seen_tasks = 4;
  spec.num_unseen_tasks = 2;
  spec.seed = static_cast<uint64_t>(seed);
  SyntheticDataset dataset = GenerateSynthetic(spec);
  std::printf("dataset: %d rows, %d features, %d seen + %d unseen tasks\n",
              dataset.table.num_rows(), dataset.table.num_features(),
              dataset.num_seen_tasks(), dataset.num_unseen_tasks());

  // 2. Wrap it as a fast-feature-selection problem (70/30 split, reward
  //    classifiers pretrained lazily per task).
  FsProblem problem(dataset.table, DefaultProblemConfig(), spec.seed + 1);

  // 3. Train PA-FEAT on the seen tasks.
  PaFeatConfig config;
  config.feat = DefaultFeatOptions(iterations, spec.seed + 2).feat;
  config.feat.max_feature_ratio = mfr;
  PaFeat pafeat(&problem, dataset.SeenTaskIndices(), config);
  const double iter_seconds = pafeat.Train(iterations);
  std::printf("trained %d iterations (%.1f ms/iteration)\n", iterations,
              iter_seconds * 1e3);

  // 4. Unseen tasks arrive: select features in milliseconds, then check the
  //    downstream SVM quality of the subset vs. all features.
  for (int unseen : dataset.UnseenTaskIndices()) {
    double exec_seconds = 0.0;
    const FeatureMask mask = pafeat.SelectFeatures(unseen, &exec_seconds);
    const DownstreamScore with_fs =
        EvaluateSubsetDownstream(&problem, unseen, mask, spec.seed + 3);
    const DownstreamScore all_features = EvaluateSubsetDownstream(
        &problem, unseen, FeatureMask(problem.num_features(), 1),
        spec.seed + 3);
    std::printf(
        "unseen task %d: selected %d/%d features in %.2f ms | "
        "F1 %.4f (all-features %.4f), AUC %.4f (all-features %.4f)\n",
        unseen, MaskCount(mask), problem.num_features(), exec_seconds * 1e3,
        with_fs.f1, all_features.f1, with_fs.auc, all_features.auc);
  }
  return 0;
}
