// pafeat_tool: a command-line driver for the whole workflow on your own
// data — the shape of a production integration.
//
// Subcommands:
//   demo                         write a demo CSV dataset to --data
//   train    --data d.csv --labels a,b --out agent.ckpt [--iterations N]
//            train on the given label columns (the seen tasks) and save the
//            agent checkpoint
//   select   --data d.csv --label c --agent agent.ckpt
//            fast feature selection for a (possibly unseen) label using a
//            saved agent; prints the selected feature names and downstream
//            quality
//   info     --agent agent.ckpt   print checkpoint metadata
//
// Data formats: CSV as written by WriteTableCsv (label columns prefixed
// "label:"), or ARFF (Mulan) via --arff_labels N (last-N-attributes
// convention).

#include <cstdio>
#include <cstring>
#include <string>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/checkpoint.h"
#include "core/defaults.h"
#include "core/experiment.h"
#include "core/explain.h"
#include "core/pafeat.h"
#include "data/arff.h"
#include "data/csv.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "memory/budget.h"

using namespace pafeat;

namespace {

std::optional<Table> LoadData(const std::string& path, int arff_labels) {
  if (path.size() > 5 && path.substr(path.size() - 5) == ".arff") {
    const auto document = ReadArffFile(path);
    if (!document.has_value()) return std::nullopt;
    return ArffToTableLastLabels(*document, arff_labels);
  }
  return ReadTableCsv(path);
}

int LabelIndexByName(const Table& table, const std::string& name) {
  for (int i = 0; i < table.num_labels(); ++i) {
    if (table.label_names()[i] == name) return i;
  }
  return -1;
}

int RunDemo(const std::string& data_path) {
  SyntheticSpec spec;
  spec.name = "demo";
  spec.num_instances = 600;
  spec.num_features = 18;
  spec.num_seen_tasks = 3;
  spec.num_unseen_tasks = 1;
  spec.seed = 12345;
  const SyntheticDataset dataset = GenerateSynthetic(spec);
  if (!WriteTableCsv(dataset.table, data_path)) {
    std::fprintf(stderr, "cannot write %s\n", data_path.c_str());
    return 1;
  }
  std::printf("wrote demo dataset to %s\n", data_path.c_str());
  std::printf("label columns:");
  for (const std::string& name : dataset.table.label_names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\ntry:\n  pafeat_tool train --data %s "
              "--labels demo_seen_0,demo_seen_1,demo_seen_2 --out /tmp/demo.ckpt\n"
              "  pafeat_tool select --data %s --label demo_unseen_0 "
              "--agent /tmp/demo.ckpt\n",
              data_path.c_str(), data_path.c_str());
  return 0;
}

// Converts a --max_cache_mb / --replay_budget_mb flag value to the budget
// convention of memory/budget.h: negative leaves the resolution chain
// untouched, 0 is an explicit "unlimited", positive is megabytes.
long long BudgetMbToBytes(int mb) {
  if (mb < 0) return kMemoryBudgetDefault;
  if (mb == 0) return kMemoryBudgetUnlimited;
  return static_cast<long long>(mb) * 1024 * 1024;
}

int RunTrain(const Table& table, const std::string& labels_csv,
             const std::string& out_path, int iterations, double mfr,
             int seed, int num_threads, int num_shards, int max_cache_mb,
             int replay_budget_mb) {
  std::vector<int> seen;
  for (const std::string& raw : Split(labels_csv, ',')) {
    const int index = LabelIndexByName(table, Trim(raw));
    if (index < 0) {
      std::fprintf(stderr, "label '%s' not found in data\n",
                   Trim(raw).c_str());
      return 1;
    }
    seen.push_back(index);
  }
  if (seen.empty()) {
    std::fprintf(stderr, "--labels must name at least one seen task\n");
    return 1;
  }

  FsProblemConfig problem_config = DefaultProblemConfig();
  problem_config.reward_cache_budget_bytes = BudgetMbToBytes(max_cache_mb);
  FsProblem problem(table, problem_config, static_cast<uint64_t>(seed));
  PaFeatConfig config;
  config.feat = DefaultFeatOptions(iterations,
                                   static_cast<uint64_t>(seed) + 1).feat;
  config.feat.max_feature_ratio = mfr;
  config.feat.replay_budget_bytes = BudgetMbToBytes(replay_budget_mb);
  if (num_threads < 1) {
    std::fprintf(stderr, "--num_threads must be >= 1\n");
    return 1;
  }
  config.feat.num_threads = num_threads;
  if (num_shards < 1) {
    std::fprintf(stderr, "--num_shards must be >= 1\n");
    return 1;
  }
  config.feat.num_shards = num_shards;
  PaFeat pafeat(&problem, seen, config);
  std::printf("training on %zu seen tasks, %d iterations...\n", seen.size(),
              iterations);
  const double iter_seconds = pafeat.Train(iterations);
  std::printf("done (%.1f ms/iteration)\n", iter_seconds * 1e3);

  if (!SaveCheckpoint(MakeCheckpoint(pafeat.feat()), out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("saved agent to %s\n", out_path.c_str());
  return 0;
}

int RunSelect(const Table& table, const std::string& label,
              const std::string& agent_path, int seed, bool quantized) {
  const int index = LabelIndexByName(table, label);
  if (index < 0) {
    std::fprintf(stderr, "label '%s' not found in data\n", label.c_str());
    return 1;
  }
  ServeConfig serve;
  serve.quantized = quantized;
  const auto selector = CheckpointedSelector::FromFile(agent_path, serve);
  if (!selector.has_value()) {
    std::fprintf(stderr, "cannot load agent from %s\n", agent_path.c_str());
    return 1;
  }
  if (selector->num_features() != table.num_features()) {
    std::fprintf(stderr,
                 "agent was trained on %d features but the data has %d\n",
                 selector->num_features(), table.num_features());
    return 1;
  }

  FsProblem problem(table, DefaultProblemConfig(),
                    static_cast<uint64_t>(seed));
  WallTimer timer;
  const std::vector<float> repr = problem.ComputeTaskRepresentation(index);
  const FeatureMask mask = selector->SelectForRepresentation(repr);
  const double exec_ms = timer.ElapsedMillis();

  std::printf("selected %d/%d features in %.2f ms%s (* = selected; q-gap is\n"
              "the policy's select-vs-deselect advantage, the audit view):\n",
              MaskCount(mask), table.num_features(), exec_ms,
              selector->quantized() ? " [int8 serving tier]" : "");
  if (const auto checkpoint = LoadCheckpoint(agent_path);
      checkpoint.has_value()) {
    Rng net_rng(0);
    DuelingNet net(checkpoint->net_config, &net_rng);
    net.DeserializeParams(checkpoint->parameters);
    for (const FeatureDecision& decision : RankedDecisions(ExplainSelection(
             net, repr, checkpoint->max_feature_ratio))) {
      std::printf("  %c %-20s q-gap %+.4f\n",
                  mask[decision.feature] ? '*' : ' ',
                  table.feature_names()[decision.feature].c_str(),
                  decision.q_gap);
    }
  }
  const DownstreamScore score =
      EvaluateSubsetDownstream(&problem, index, mask, seed + 7);
  const DownstreamScore all = EvaluateSubsetDownstream(
      &problem, index, FeatureMask(table.num_features(), 1), seed + 7);
  std::printf("downstream SVM: F1 %.4f (all features %.4f), AUC %.4f "
              "(all features %.4f)\n",
              score.f1, all.f1, score.auc, all.auc);
  return 0;
}

int RunInfo(const std::string& agent_path) {
  const auto checkpoint = LoadCheckpoint(agent_path);
  if (!checkpoint.has_value()) {
    std::fprintf(stderr, "cannot load %s\n", agent_path.c_str());
    return 1;
  }
  std::printf("agent checkpoint %s:\n", agent_path.c_str());
  std::printf("  features:          %d\n",
              (checkpoint->net_config.input_dim - 3) / 2);
  std::printf("  max feature ratio: %.2f\n", checkpoint->max_feature_ratio);
  std::printf("  trunk hidden dims:");
  for (int h : checkpoint->net_config.trunk_hidden) std::printf(" %d", h);
  std::printf("\n  parameters:        %zu\n", checkpoint->parameters.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: pafeat_tool <demo|train|select|info> [flags]\n");
    return 1;
  }
  const std::string command = argv[1];

  std::string data = "/tmp/pafeat_demo.csv";
  std::string labels;
  std::string label;
  std::string agent = "/tmp/pafeat_agent.ckpt";
  std::string out = "/tmp/pafeat_agent.ckpt";
  int iterations = 400;
  double mfr = 0.5;
  int seed = 7;
  int num_threads = 1;
  int num_shards = 1;
  int max_cache_mb = -1;
  int replay_budget_mb = -1;
  int arff_labels = 1;
  bool quantized = false;
  FlagSet flags;
  flags.AddString("data", &data, "CSV or .arff dataset path");
  flags.AddString("labels", &labels, "train: comma-separated seen labels");
  flags.AddString("label", &label, "select: target label name");
  flags.AddString("agent", &agent, "select/info: checkpoint path");
  flags.AddString("out", &out, "train: output checkpoint path");
  flags.AddInt("iterations", &iterations, "train: iterations");
  flags.AddDouble("mfr", &mfr, "train: max feature ratio");
  flags.AddInt("seed", &seed, "random seed");
  flags.AddInt("num_threads", &num_threads,
               "train: episode threads (results are identical at any value)");
  flags.AddInt("num_shards", &num_shards,
               "train: collector shards (results are identical at any value)");
  flags.AddInt("max_cache_mb", &max_cache_mb,
               "train: per-task reward-cache budget in MB (0 = unlimited, "
               "-1 = default chain; results are identical at any budget)");
  flags.AddInt("replay_budget_mb", &replay_budget_mb,
               "train: per-task replay-buffer budget in MB (0 = unlimited, "
               "-1 = default chain)");
  flags.AddInt("arff_labels", &arff_labels,
               "ARFF: number of trailing label attributes");
  flags.AddBool("quantized", &quantized,
                "select: serve from the int8 quantized tier (subset-match "
                "validated, outside the bitwise contract)");
  if (!flags.Parse(argc - 1, argv + 1)) return 1;

  if (command == "demo") return RunDemo(data);
  if (command == "info") return RunInfo(agent);

  const auto table = LoadData(data, arff_labels);
  if (!table.has_value()) {
    std::fprintf(stderr, "cannot load dataset from %s\n", data.c_str());
    return 1;
  }
  if (command == "train") {
    return RunTrain(*table, labels, out, iterations, mfr, seed, num_threads,
                    num_shards, max_cache_mb, replay_budget_mb);
  }
  if (command == "select") {
    return RunSelect(*table, label, agent, seed, quantized);
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 1;
}
