#!/bin/bash
# Sanitized test run, mode-selecting:
#
#   scripts/check.sh [asan|tsan]     (default: asan)
#
#   asan  — AddressSanitizer + UBSan (-DPAFEAT_SANITIZE=ON) plus the
#           checked-build assertions (-DPAFEAT_CHECKED=ON): heap errors,
#           UB, arena canaries, Matrix bounds, GEMM aliasing. Run before
#           merging changes to the kernel/arena layers.
#   tsan  — ThreadSanitizer (-DPAFEAT_TSAN=ON): data races in the
#           ThreadPool fan-out, the reward-cache stampede control, and the
#           per-thread arena handoff. Run before merging changes to
#           anything under src/common/thread_pool.*, src/ml/, or parallel
#           episode collection.
#
# Each mode keeps its own build tree (build-asan / build-tsan): the
# instrumentation overhead makes benchmark numbers meaningless and the ASan
# and TSan runtimes cannot be linked together. Warnings are errors here
# (PAFEAT_WERROR=ON; export WERROR=OFF to opt out on exotic compilers).
set -eu
cd "$(dirname "$0")/.."

MODE=${1:-asan}
WERROR=${WERROR:-ON}

case "$MODE" in
  asan)
    BUILD_DIR=${BUILD_DIR:-build-asan}
    CMAKE_FLAGS=(-DPAFEAT_SANITIZE=ON -DPAFEAT_CHECKED=ON)
    ;;
  tsan)
    BUILD_DIR=${BUILD_DIR:-build-tsan}
    CMAKE_FLAGS=(-DPAFEAT_TSAN=ON)
    # halt_on_error: a race fails the test run instead of scrolling past.
    export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
    ;;
  *)
    echo "usage: $0 [asan|tsan]" >&2
    exit 2
    ;;
esac

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DPAFEAT_WERROR="$WERROR" \
  "${CMAKE_FLAGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
