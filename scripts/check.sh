#!/bin/bash
# Sanitized test run: configures a separate build tree with
# -DPAFEAT_SANITIZE=ON (ASan + UBSan, see the top-level CMakeLists.txt),
# builds everything, and runs the full test suite under the instrumentation.
# Use this before merging changes to the kernel/arena layers — the bump
# allocator and the pool-split GEMM paths are exactly the code where an
# out-of-bounds write would otherwise go unnoticed.
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DPAFEAT_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
