#!/bin/bash
# Pre-merge gate: the full correctness matrix, one command.
#
#   scripts/ci.sh
#
# Steps (each in its own build tree, all warning-clean via PAFEAT_WERROR):
#   release   Release build + full ctest suite — includes pafeat_lint_test
#             (tree-wide determinism/concurrency lint), the lint self-test,
#             and the generated per-header self-containment TUs
#   asan      scripts/check.sh asan  (ASan + UBSan + checked assertions)
#   tsan      scripts/check.sh tsan  (ThreadSanitizer)
#
# Prints a summary table and exits nonzero if any step failed. Steps keep
# running after a failure so one run reports the whole matrix.
set -u
cd "$(dirname "$0")/.."

declare -a STEP_NAMES=()
declare -a STEP_STATUS=()
declare -a STEP_SECONDS=()
FAILED=0

run_step() {
  local name="$1"
  shift
  echo
  echo "=== ci: ${name} ==="
  local start
  start=$(date +%s)
  if "$@"; then
    STEP_STATUS+=("PASS")
  else
    STEP_STATUS+=("FAIL")
    FAILED=1
  fi
  STEP_NAMES+=("$name")
  STEP_SECONDS+=($(( $(date +%s) - start )))
}

release_step() {
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DPAFEAT_WERROR=ON &&
  cmake --build build -j "$(nproc)" &&
  ctest --test-dir build --output-on-failure -j "$(nproc)"
}

run_step "release+lint+werror" release_step
run_step "asan+ubsan+checked" scripts/check.sh asan
run_step "tsan" scripts/check.sh tsan

echo
echo "=== ci summary ==="
printf '%-22s %-6s %8s\n' "step" "status" "seconds"
for i in "${!STEP_NAMES[@]}"; do
  printf '%-22s %-6s %8s\n' "${STEP_NAMES[$i]}" "${STEP_STATUS[$i]}" \
    "${STEP_SECONDS[$i]}"
done
if [ "$FAILED" -ne 0 ]; then
  echo "ci: FAILED"
else
  echo "ci: all steps passed"
fi
exit "$FAILED"
