#!/bin/bash
# Pre-merge gate: the full correctness matrix, one command.
#
#   scripts/ci.sh
#
# Steps (each in its own build tree, all warning-clean via PAFEAT_WERROR):
#   release   Release build + full ctest suite — includes pafeat_lint_test
#             (tree-wide determinism/concurrency lint), the lint self-test,
#             and the generated per-header self-containment TUs
#   analyze   The cross-TU semantic pass (pafeat-analyze) standalone: rule
#             self-tests, then the tree gate over src/ — any new rng-escape /
#             borrow-across-mutation / hot-path-alloc / pool-reentrancy
#             finding fails the run (ctest covers this too via
#             pafeat_analyze_{selftest,tree}; the dedicated step makes the
#             analyzer's verdict a first-class row in the summary table)
#   generic   The same release binaries re-tested under PAFEAT_SIMD=generic:
#             the capability ladder's forced-downgrade contract (fp32 plane
#             bit-identical at every compiled-in level) exercised with the
#             portable kernels dispatched process-wide, not just through the
#             per-level test entry points
#   asan      scripts/check.sh asan  (ASan + UBSan + checked assertions),
#             with PAFEAT_SERVE_QUANTIZED=1 so the quantized-serving sweep
#             widens to its extended seed set under instrumentation, and
#             PAFEAT_CACHE_BUDGET=65536 so every reward cache that doesn't
#             set an explicit budget runs under a binding ~64KB ceiling —
#             the clock-sweep eviction and slab-reuse paths churn
#             continuously while ASan watches the freed slots
#   tsan      scripts/check.sh tsan  (ThreadSanitizer), with
#             PAFEAT_SHARD_STRESS_SHARDS=4 so the shard rendezvous stress
#             runs the sharded collector fan-out at num_shards=4 — several
#             shards racing on the pool and the shared reward-cache locks
#             is exactly the traffic TSan should see
#
# Prints a summary table and exits nonzero if any step failed. Steps keep
# running after a failure so one run reports the whole matrix.
set -u
cd "$(dirname "$0")/.."

declare -a STEP_NAMES=()
declare -a STEP_STATUS=()
declare -a STEP_SECONDS=()
FAILED=0

run_step() {
  local name="$1"
  shift
  echo
  echo "=== ci: ${name} ==="
  local start
  start=$(date +%s)
  if "$@"; then
    STEP_STATUS+=("PASS")
  else
    STEP_STATUS+=("FAIL")
    FAILED=1
  fi
  STEP_NAMES+=("$name")
  STEP_SECONDS+=($(( $(date +%s) - start )))
}

release_step() {
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DPAFEAT_WERROR=ON &&
  cmake --build build -j "$(nproc)" &&
  ctest --test-dir build --output-on-failure -j "$(nproc)"
}

# Re-runs the release tree's tests with the SIMD ladder clamped to the
# portable kernels. No rebuild: the clamp is a process-wide env override, so
# this leg proves the shipped binary — not a special build — passes with
# generic dispatch (downgrade tests inside the suite still compare levels
# pairwise; this leg catches anything that only goes through Impl()).
forced_generic_step() {
  PAFEAT_SIMD=generic ctest --test-dir build --output-on-failure -j "$(nproc)"
}

# ASan leg with the quantized serving gate's extended sweep enabled:
# PAFEAT_SERVE_QUANTIZED=1 widens QuantizedServingSweepTest to its full seed
# set, so the int8 tier's buffers get their widest exercise under ASan.
asan_step() {
  PAFEAT_SERVE_QUANTIZED=1 PAFEAT_CACHE_BUDGET=65536 scripts/check.sh asan
}

# Semantic analyzer leg: reuses the release tree's binary (built above).
analyze_step() {
  ./build/tools/lint/pafeat-analyze --self-test &&
  ./build/tools/lint/pafeat-analyze --root . src
}

run_step "release+lint+werror" release_step
run_step "analyze (semantic)" analyze_step
run_step "release simd=generic" forced_generic_step
run_step "asan+ubsan+checked" asan_step
# TSan leg with the sharded collector stress pinned to a 4-shard fan-out
# (ShardedCollectionRendezvousStress reads the override).
tsan_step() {
  PAFEAT_SHARD_STRESS_SHARDS=4 scripts/check.sh tsan
}

run_step "tsan" tsan_step

echo
echo "=== ci summary ==="
printf '%-22s %-6s %8s\n' "step" "status" "seconds"
for i in "${!STEP_NAMES[@]}"; do
  printf '%-22s %-6s %8s\n' "${STEP_NAMES[$i]}" "${STEP_STATUS[$i]}" \
    "${STEP_SECONDS[$i]}"
done
if [ "$FAILED" -ne 0 ]; then
  echo "ci: FAILED"
else
  echo "ci: all steps passed"
fi
exit "$FAILED"
